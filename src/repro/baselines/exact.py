"""Exact solvers and certified tight bounds for small instances.

* :func:`tise_milp_bound` — the Section 3 LP with integral calibration
  variables (optionally integral assignments), solved by HiGHS MILP.  Any
  feasible TISE schedule induces a feasible integral point, so the MILP
  optimum is a *lower bound* on the optimal TISE calibration count that is
  at least as tight as the LP bound (footnote 2 of the paper explains why it
  is not, in general, attainable as a schedule).
* :func:`exact_unit_calibrations` — exact minimum calibration count for
  unit-job integral instances by exhaustive search over calibration start
  multisets with a bipartite-matching feasibility check (unit jobs into unit
  slots).  Used to certify lazy binning's single-machine optimality and as
  the UNIT bench's ground truth.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

import networkx as nx
import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.errors import InfeasibleInstanceError, LimitExceededError, SolverError
from ..core.job import Instance, Job
from ..longwindow.lp_relaxation import build_tise_lp

__all__ = ["tise_milp_bound", "exact_unit_calibrations", "unit_matching_feasible"]


def tise_milp_bound(
    jobs: Sequence[Job],
    calibration_length: float,
    machine_budget: int,
    integral_assignments: bool = False,
) -> float:
    """Exact optimum of the TISE LP with integral ``C_t``.

    A certified lower bound on the optimal TISE calibration count on
    ``machine_budget`` machines, sandwiched between the LP value and TISE
    OPT.  ``integral_assignments=True`` additionally makes every ``X_jt``
    binary (tighter, slower).
    """
    if not jobs:
        return 0.0
    model = build_tise_lp(jobs, calibration_length, machine_budget)
    c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.lp.to_standard_arrays()
    nvar = model.lp.num_variables
    integrality = np.zeros(nvar)
    for idx in model.c_vars.values():
        integrality[idx] = 1
    if integral_assignments:
        for idx in model.x_vars.values():
            integrality[idx] = 1
    ub = ub.copy()
    if integral_assignments:
        for idx in model.x_vars.values():
            ub[idx] = 1.0
    constraints = []
    if a_ub is not None:
        constraints.append(
            LinearConstraint(a_ub, -np.inf * np.ones(a_ub.shape[0]), b_ub)
        )
    if a_eq is not None:
        constraints.append(LinearConstraint(a_eq, b_eq, b_eq))
    result = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
    )
    if result.status == 2:
        raise InfeasibleInstanceError(
            f"TISE MILP infeasible on m' = {machine_budget} machines"
        )
    if not result.success:
        raise SolverError(f"TISE MILP failed: {result.message}")
    return float(result.fun)


def unit_matching_feasible(
    jobs: Sequence[Job], calibration_starts: Sequence[int], calibration_length: int
) -> bool:
    """Can unit ``jobs`` be matched into the calibrations' unit slots?

    Each calibration at start ``c`` offers slots ``c, c+1, ..., c+T-1``;
    job ``j`` may take slot ``s`` iff ``r_j <= s < d_j``.  Unit jobs make
    feasibility a bipartite matching question, decided exactly here with
    Hopcroft-Karp.
    """
    T = calibration_length
    graph = nx.Graph()
    job_nodes = [("job", j.job_id) for j in jobs]
    graph.add_nodes_from(job_nodes, bipartite=0)
    slot_nodes = [
        ("slot", idx, s)
        for idx, c in enumerate(calibration_starts)
        for s in range(c, c + T)
    ]
    graph.add_nodes_from(slot_nodes, bipartite=1)
    for j in jobs:
        for idx, c in enumerate(calibration_starts):
            lo = max(c, int(j.release))
            hi = min(c + T, int(j.deadline))
            for s in range(lo, hi):
                graph.add_edge(("job", j.job_id), ("slot", idx, s))
    matching = nx.bipartite.maximum_matching(graph, top_nodes=job_nodes)
    # maximum_matching returns both directions; count job-side entries.
    matched = sum(1 for node in matching if node[0] == "job")
    return matched == len(jobs)


def _max_overlap_starts(starts: Sequence[int], T: int) -> int:
    events: list[tuple[int, int]] = []
    for c in starts:
        events.append((c, 1))
        events.append((c + T, -1))
    events.sort()
    best = cur = 0
    for _, delta in events:
        cur += delta
        best = max(best, cur)
    return best


def exact_unit_calibrations(
    instance: Instance,
    max_calibrations: int = 6,
    budget: int = 2_000_000,
) -> int:
    """Exact minimum number of calibrations for a unit-job instance.

    Exhaustive search over multisets of calibration start times drawn from
    the candidate set ``{d_j - k : 1 <= k <= T}  u  {r_j + k : 0 <= k < T}``
    (calibrations can always be shifted until they hit such a point),
    feasibility decided by :func:`unit_matching_feasible`, machine budget
    enforced as max interval overlap ``<= m``.

    Raises :class:`LimitExceededError` when the enumeration budget runs out
    and :class:`InfeasibleInstanceError` when no schedule with
    ``max_calibrations`` calibrations exists.
    """
    jobs = instance.jobs
    if not jobs:
        return 0
    T = int(instance.calibration_length)
    m = instance.machines
    # Candidate completeness: with integral windows and unit jobs there is
    # an optimal schedule with integral job starts and integral calibration
    # starts (round each calibration start up to the next integer: every
    # integral execution slot it contained is still contained).  So *all*
    # integers in the horizon are a complete candidate set.
    lo_time = min(int(j.release) for j in jobs) - T + 1
    hi_time = max(int(j.deadline) for j in jobs)
    ordered = list(range(lo_time, hi_time))

    lower = max(1, math.ceil(len(jobs) / T))
    examined = 0
    for k in range(lower, max_calibrations + 1):
        for combo in itertools.combinations_with_replacement(ordered, k):
            examined += 1
            if examined > budget:
                raise LimitExceededError(
                    f"exact unit search exceeded {budget} combinations"
                )
            if _max_overlap_starts(combo, T) > m:
                continue
            if unit_matching_feasible(jobs, combo, T):
                return k
    raise InfeasibleInstanceError(
        f"no unit schedule with <= {max_calibrations} calibrations found"
    )
