"""HiGHS LP backend (via :func:`scipy.optimize.linprog`).

This is the default backend for the TISE relaxation: the LPs of Section 3
have tens of thousands of sparse columns at the benched sizes, which HiGHS
solves in milliseconds.  The in-repo :mod:`repro.lp.simplex` backend exists
as an independently-implemented substrate and cross-check.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from ..core.errors import SolverError, StageTimeoutError
from .model import LinearProgram, LPSolution, LPStatus
from .warmstart import Basis

__all__ = ["HighsBackend", "solve_highs"]


_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
}

_TIME_LIMIT_STATUS = 1  # scipy: "iteration or time limit reached"


def solve_highs(
    model: LinearProgram,
    *,
    time_limit: float | None = None,
    warm_basis: Basis | None = None,
) -> LPSolution:
    """Solve ``model`` with HiGHS; never raises on infeasibility/unboundedness.

    ``time_limit`` (seconds) is forwarded to HiGHS; exceeding it raises
    :class:`StageTimeoutError` so the resilience layer can fall back.
    ``warm_basis`` is accepted for backend interface parity but ignored —
    SciPy's linprog interface offers no basis injection.
    """
    del warm_basis
    tic = time.perf_counter()
    c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_standard_arrays()
    if model.num_variables == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, x=np.empty(0))
    bounds = np.column_stack([lb, ub])
    options = {}
    if time_limit is not None:
        if time_limit <= 0:
            raise StageTimeoutError(
                "no time left for the HiGHS LP solve",
                stage="lp",
                backend="highs",
                elapsed=0.0,
            )
        options["time_limit"] = float(time_limit)
    try:
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
            options=options or None,
        )
    except ValueError as exc:  # malformed model dimensions etc.
        raise SolverError(
            f"HiGHS rejected LP {model.name or '<unnamed>'} [{model.dims()}]: {exc}",
            stage="lp",
            backend="highs",
        ) from exc
    if time_limit is not None and result.status == _TIME_LIMIT_STATUS:
        raise StageTimeoutError(
            f"HiGHS hit the {time_limit:g}s time limit on LP "
            f"{model.name or '<unnamed>'} [{model.dims()}]",
            stage="lp",
            backend="highs",
            elapsed=float(time_limit),
        )
    status = _STATUS_MAP.get(result.status, LPStatus.ERROR)
    if status is LPStatus.OPTIMAL:
        dual_ineq = (
            np.asarray(result.ineqlin.marginals, dtype=float)
            if a_ub is not None and hasattr(result, "ineqlin")
            else None
        )
        dual_eq = (
            np.asarray(result.eqlin.marginals, dtype=float)
            if a_eq is not None and hasattr(result, "eqlin")
            else None
        )
        return LPSolution(
            status=status,
            objective=float(result.fun),
            x=np.asarray(result.x, dtype=float),
            message=result.message,
            dual_ineq=dual_ineq,
            dual_eq=dual_eq,
            iterations=int(getattr(result, "nit", 0)),
            solve_ms=(time.perf_counter() - tic) * 1e3,
        )
    return LPSolution(status=status, objective=None, x=None, message=result.message)


class HighsBackend:
    """Callable-object form of :func:`solve_highs` for the backend registry."""

    name = "highs"

    def __call__(
        self,
        model: LinearProgram,
        *,
        time_limit: float | None = None,
        warm_basis: Basis | None = None,
    ) -> LPSolution:
        return solve_highs(model, time_limit=time_limit, warm_basis=warm_basis)

    def __repr__(self) -> str:  # pragma: no cover
        return "HighsBackend()"
