"""HiGHS LP backend (via :func:`scipy.optimize.linprog`).

This is the default backend for the TISE relaxation: the LPs of Section 3
have tens of thousands of sparse columns at the benched sizes, which HiGHS
solves in milliseconds.  The in-repo :mod:`repro.lp.simplex` backend exists
as an independently-implemented substrate and cross-check.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..core.errors import SolverError
from .model import LinearProgram, LPSolution, LPStatus

__all__ = ["HighsBackend", "solve_highs"]


_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
}


def solve_highs(model: LinearProgram) -> LPSolution:
    """Solve ``model`` with HiGHS; never raises on infeasibility/unboundedness."""
    c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_standard_arrays()
    if model.num_variables == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, x=np.empty(0))
    bounds = np.column_stack([lb, ub])
    try:
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
    except ValueError as exc:  # malformed model dimensions etc.
        raise SolverError(f"HiGHS rejected LP {model.name!r}: {exc}") from exc
    status = _STATUS_MAP.get(result.status, LPStatus.ERROR)
    if status is LPStatus.OPTIMAL:
        dual_ineq = (
            np.asarray(result.ineqlin.marginals, dtype=float)
            if a_ub is not None and hasattr(result, "ineqlin")
            else None
        )
        dual_eq = (
            np.asarray(result.eqlin.marginals, dtype=float)
            if a_eq is not None and hasattr(result, "eqlin")
            else None
        )
        return LPSolution(
            status=status,
            objective=float(result.fun),
            x=np.asarray(result.x, dtype=float),
            message=result.message,
            dual_ineq=dual_ineq,
            dual_eq=dual_eq,
        )
    return LPSolution(status=status, objective=None, x=None, message=result.message)


class HighsBackend:
    """Callable-object form of :func:`solve_highs` for the backend registry."""

    name = "highs"

    def __call__(self, model: LinearProgram) -> LPSolution:
        return solve_highs(model)

    def __repr__(self) -> str:  # pragma: no cover
        return "HighsBackend()"
