"""A self-contained bounded-variable *revised* simplex LP solver.

This is the library's own LP substrate: an independently implemented solver
used to cross-check the HiGHS backend (tests assert both find the same
optimum on random LPs and on small TISE relaxations) and benched against it
in the ABL3 ablation.  Unlike the preserved full-tableau reference
(:mod:`repro.lp.tableau`), it maintains a *factorized basis* instead of an
``O(rows x cols)`` dense tableau:

* the basis inverse ``B^-1`` is held explicitly and updated per pivot with
  a rank-1 (product-form) elementary transformation; it is refactorized
  from scratch — one LAPACK solve — every :data:`_REFACTOR_EVERY` basis
  exchanges or whenever a pivot element is numerically untrustworthy
  (``refactorizations`` on the returned :class:`LPSolution` counts these);
* pricing and the two-sided ratio test are fully vectorized numpy:
  Dantzig-style pricing normalized by static column norms
  ("steepest-edge-lite"), switching to Bland's anti-cycling rule after a
  streak of :data:`_BLAND_AFTER` degenerate pivots and back on the first
  real step;
* finite variable upper bounds are handled *natively* by the bounded-
  variable method (nonbasic columns may sit at either bound; a ratio test
  capped by the entering column's own span performs a basis-free *bound
  flip*) instead of adding one ``<=`` row per bounded variable.

Model handling:

* variables with a finite lower bound are shifted to zero;
* variables with ``lb = -inf`` but a finite upper bound are reflected
  (``x = ub - x'``) — no extra row, no split;
* doubly-free variables are split into a difference of nonnegatives;
* GE/EQ rows receive artificial variables in phase 1, and the artificial
  columns are genuinely *retired* afterwards: pivoted out of the basis
  where possible, then removed from pricing and fixed to zero (no magic
  big-M costs that could poison reduced-cost comparisons).

Warm starts: pass ``warm_basis`` (the ``basis`` of a previous solve's
:class:`LPSolution`) and the solver refactorizes that basis, verifies the
point it implies is primal feasible for the *current* data, and resumes
phase 2 directly.  Re-solving an unchanged model this way prices once and
pivots zero times.  A stale basis — wrong shape, singular, or no longer
feasible — falls back to an ordinary cold phase-1 start ("crossover to
phase 1"), so a warm hint can cost nothing but never break correctness.

Numerical sentinels: every OPTIMAL return (cold or warm) is re-checked
against the model data — primal residual, basis consistency
``max |B x_B - b|`` (one extra sparse matvec), and the bounded-variable
objective-vs-duals identity (see :mod:`repro.lp.sentinel`).  Drift beyond
tolerance triggers the escalation ladder: one step of iterative refinement
of ``x_B``, then a forced refactorization with a re-priced phase 2, then —
for warm-started solves — a full cold re-solve.  A solve that still fails
its sentinels raises :class:`~repro.core.errors.NumericalDriftError`, a
:class:`~repro.core.errors.SolverError` the resilience layer routes to the
next LP backend.  The verdict rides the solution's ``sentinel`` field into
``LPSolution.telemetry()``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np
from scipy import sparse
from scipy.linalg.blas import dger as _dger

from ..core.errors import NumericalDriftError, StageTimeoutError
from ..core.resilience import check_budget
from ..core.tolerance import EPS
from .model import LinearProgram, LPSolution, LPStatus
from .sentinel import SENTINEL_TOL, SentinelReport, solution_residuals
from .warmstart import Basis

__all__ = ["SimplexBackend", "solve_simplex"]

_TOL = EPS
_PHASE1_TOL = 100 * EPS  # phase-1 objective accumulates m pivots of error
_MAX_ITERS_FACTOR = 200
_BUDGET_POLL_ITERS = 64  # pivot iterations between wall-clock checks
_REFACTOR_EVERY = 200  # basis exchanges between scheduled refactorizations
_BLAND_AFTER = 12  # degenerate-pivot streak that triggers Bland's rule
_PIVOT_TOL = 1e-9  # smallest trustworthy pivot element
_RATIO_TIE_TOL = 1e-9  # ratio-test tie window


class _SingularBasisError(Exception):
    """Internal: the candidate basis matrix was singular."""


@dataclass
class _StandardForm:
    """``min c.x  s.t.  A x = b (b >= 0),  0 <= x <= u`` plus the inverse map.

    Columns are: one per model variable (shifted/reflected), then one per
    doubly-free variable's negative part, then one slack per inequality
    row.  ``needs_artificial`` marks rows whose slack cannot seed a
    feasible identity basis (EQ rows and sign-flipped inequalities).
    """

    a: sparse.csc_matrix
    b: np.ndarray
    c: np.ndarray
    u: np.ndarray
    needs_artificial: np.ndarray
    slack_of_row: np.ndarray  # slack column per row, -1 for EQ rows
    nvar: int
    sign: np.ndarray
    shift: np.ndarray
    split_col: np.ndarray  # negative-part column per variable, -1 if none


def _build_standard_form(model: LinearProgram) -> _StandardForm:
    """Vectorized standard-form assembly (sparse throughout, no row loops)."""
    c0, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_standard_arrays()
    nvar = model.num_variables

    lb_finite = np.isfinite(lb)
    ub_finite = np.isfinite(ub)
    split = ~lb_finite & ~ub_finite
    # x = shift + sign * x'; doubly-free variables additionally subtract a
    # negative-part column (sign +1, shift 0).
    sign = np.where(lb_finite, 1.0, np.where(ub_finite, -1.0, 1.0))
    shift = np.where(lb_finite, lb, np.where(ub_finite, ub, 0.0))
    u_main = np.where(lb_finite & ub_finite, ub - lb, np.inf)

    split_idx = np.flatnonzero(split)
    split_col = np.full(nvar, -1, dtype=np.int64)
    split_col[split_idx] = nvar + np.arange(split_idx.size)
    n_struct = nvar + split_idx.size

    blocks = []
    rhs_parts = []
    n_ineq_rows = 0
    if a_ub is not None and b_ub is not None:
        blocks.append(a_ub)
        rhs_parts.append(b_ub - a_ub @ shift)
        n_ineq_rows = a_ub.shape[0]
    if a_eq is not None and b_eq is not None:
        blocks.append(a_eq)
        rhs_parts.append(b_eq - a_eq @ shift)
    if not blocks:
        m = 0
        empty = sparse.csc_matrix((0, n_struct))
        c_std = np.concatenate([c0 * sign, -c0[split_idx]])
        u_std = np.concatenate([u_main, np.full(split_idx.size, np.inf)])
        return _StandardForm(
            a=empty,
            b=np.empty(0),
            c=c_std,
            u=u_std,
            needs_artificial=np.empty(0, dtype=bool),
            slack_of_row=np.empty(0, dtype=np.int64),
            nvar=nvar,
            sign=sign,
            shift=shift,
            split_col=split_col,
        )

    a0 = sparse.vstack(blocks, format="csc")
    b = np.concatenate(rhs_parts)
    m = a0.shape[0]
    is_eq = np.zeros(m, dtype=bool)
    is_eq[n_ineq_rows:] = True

    # Column transform (variable signs) then the negative-part split block.
    a0 = (a0 @ sparse.diags(sign)).tocsc()
    if split_idx.size:
        a_struct = sparse.hstack([a0, -a0[:, split_idx]], format="csc")
    else:
        a_struct = a0
    c_struct = np.concatenate([c0 * sign, -c0[split_idx]])
    u_struct = np.concatenate([u_main, np.full(split_idx.size, np.inf)])

    # Normalize rows to b >= 0 (flipped LE rows become GE rows).
    flipped = b < 0.0
    if flipped.any():
        a_struct = (sparse.diags(np.where(flipped, -1.0, 1.0)) @ a_struct).tocsc()
        b = np.abs(b)

    # One slack column per inequality row: +1 for LE, -1 for flipped (GE).
    ineq_rows = np.flatnonzero(~is_eq)
    n_slack = ineq_rows.size
    slack_of_row = np.full(m, -1, dtype=np.int64)
    slack_of_row[ineq_rows] = n_struct + np.arange(n_slack)
    if n_slack:
        slack_block = sparse.coo_matrix(
            (
                np.where(flipped[ineq_rows], -1.0, 1.0),
                (ineq_rows, np.arange(n_slack)),
            ),
            shape=(m, n_slack),
        )
        a_full = sparse.hstack([a_struct, slack_block], format="csc")
    else:
        a_full = a_struct.tocsc()

    needs_artificial = is_eq | flipped
    return _StandardForm(
        a=a_full,
        b=b,
        c=np.concatenate([c_struct, np.zeros(n_slack)]),
        u=np.concatenate([u_struct, np.full(n_slack, np.inf)]),
        needs_artificial=needs_artificial,
        slack_of_row=slack_of_row,
        nvar=nvar,
        sign=sign,
        shift=shift,
        split_col=split_col,
    )


class _RevisedSimplex:
    """One solve's worth of revised-simplex state over a standard form."""

    def __init__(
        self,
        form: _StandardForm,
        deadline: float | None,
        context: str,
    ) -> None:
        self.form = form
        self.deadline = deadline
        self.context = context
        self.m = form.b.size
        self.n0 = form.a.shape[1]  # structural + slack columns

        art_rows = np.flatnonzero(form.needs_artificial)
        self.art_rows = art_rows
        self.art_cols = self.n0 + np.arange(art_rows.size)
        self.n = self.n0 + art_rows.size
        if art_rows.size:
            art_block = sparse.coo_matrix(
                (np.ones(art_rows.size), (art_rows, np.arange(art_rows.size))),
                shape=(self.m, art_rows.size),
            )
            self.a = sparse.hstack([form.a, art_block], format="csc")
        else:
            self.a = form.a.tocsc()
        self.at = self.a.T.tocsr()  # for O(nnz) pricing: d = c - A^T y
        self.b = form.b
        # Static steepest-edge-lite weights: reduced costs are compared
        # after normalizing by the column's norm, which resists the classic
        # Dantzig failure mode of chasing badly-scaled columns.
        sq = np.asarray(self.a.multiply(self.a).sum(axis=0)).ravel()
        self.colnorm = np.sqrt(1.0 + sq)

        self.u = np.concatenate([form.u, np.full(art_rows.size, np.inf)])
        self.basic = np.empty(self.m, dtype=np.int64)
        self.in_basis = np.zeros(self.n, dtype=bool)
        self.at_upper = np.zeros(self.n, dtype=bool)
        self.eligible = np.ones(self.n, dtype=bool)
        self.binv = np.empty((self.m, self.m))
        self.x_b = np.empty(self.m)

        self.iterations = 0
        self.refactorizations = 0
        self._exchanges = 0
        self._degenerate_streak = 0
        self._bland = False
        self.max_iters = _MAX_ITERS_FACTOR * (self.m + self.n + 1)

    # -- basis maintenance --------------------------------------------------

    def _rhs_adjusted(self) -> np.ndarray:
        """``b`` minus the contribution of nonbasic-at-upper columns."""
        rhs = self.b.astype(float, copy=True)
        cols = np.flatnonzero(self.at_upper)
        if cols.size:
            rhs -= self.a[:, cols] @ self.u[cols]
        return rhs

    def _refactor(self) -> None:
        """Rebuild ``B^-1`` and ``x_B`` from scratch (counts as one refactor)."""
        basis_matrix = self.a[:, self.basic].toarray()
        try:
            # Fortran order keeps the per-pivot BLAS ``dger`` update and the
            # sparse column gathers in ``_column`` contiguous.
            self.binv = np.asfortranarray(np.linalg.inv(basis_matrix))
        except np.linalg.LinAlgError as exc:
            raise _SingularBasisError(str(exc)) from exc
        if not np.all(np.isfinite(self.binv)):
            raise _SingularBasisError("basis inverse overflowed")
        self.refactorizations += 1
        self.x_b = self.binv @ self._rhs_adjusted()

    def cold_start(self) -> None:
        """Identity basis: slack for LE rows, artificial for GE/EQ rows."""
        form = self.form
        self.in_basis[:] = False
        self.at_upper[:] = False
        self.eligible[:] = True
        self.u[self.art_cols] = np.inf
        start_cols = form.slack_of_row.copy()
        art_iter = iter(self.art_cols)
        for row in self.art_rows:
            start_cols[row] = next(art_iter)
        self.basic = start_cols
        self.in_basis[self.basic] = True
        # The start columns form a +1 identity, so B^-1 = I for free.
        self.binv = np.eye(self.m, order="F")
        self.x_b = self.b.astype(float, copy=True)

    def try_warm_start(self, warm: Basis) -> bool:
        """Install ``warm`` if it is compatible, factorizable, and feasible."""
        if not warm.matches(self.m, self.n0):
            return False
        basic = np.asarray(warm.basic, dtype=np.int64)
        if np.unique(basic).size != self.m:
            return False
        at_upper_cols = np.asarray(warm.at_upper, dtype=np.int64)
        in_basis = np.zeros(self.n, dtype=bool)
        in_basis[basic] = True
        if at_upper_cols.size and (
            np.any(in_basis[at_upper_cols])
            or np.any(~np.isfinite(self.u[at_upper_cols]))
        ):
            return False
        self.basic = basic
        self.in_basis = in_basis
        self.at_upper[:] = False
        self.at_upper[at_upper_cols] = True
        self.retire_artificials()
        try:
            self._refactor()
        except _SingularBasisError:
            return False
        # Crossover check: the restored vertex must still be primal
        # feasible for the *current* data, else we fall back to phase 1.
        feas_tol = _PHASE1_TOL * (1.0 + float(np.abs(self.b).max(initial=0.0)))
        upper = self.u[self.basic]
        if np.any(self.x_b < -feas_tol) or np.any(self.x_b > upper + feas_tol):
            return False
        return True

    def retire_artificials(self) -> None:
        """Delete artificial columns from pricing and pin them to zero."""
        if self.art_cols.size:
            self.eligible[self.art_cols] = False
            self.u[self.art_cols] = 0.0
            self.at_upper[self.art_cols] = False

    # -- the pivot loop ------------------------------------------------------

    def _poll(self) -> None:
        check_budget("lp", "simplex")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise StageTimeoutError(
                f"simplex exceeded its time limit{self.context}",
                stage="lp",
                backend="simplex",
            )

    def _entering(self, reduced: np.ndarray) -> int:
        """Entering column index, or -1 at optimality."""
        lower_ok = (
            (~self.in_basis)
            & (~self.at_upper)
            & self.eligible
            & (reduced < -_TOL)
        )
        upper_ok = (
            (~self.in_basis) & self.at_upper & self.eligible & (reduced > _TOL)
        )
        if self._bland:
            candidates = np.flatnonzero(lower_ok | upper_ok)
            return int(candidates[0]) if candidates.size else -1
        score = np.where(lower_ok, -reduced, 0.0)
        score = np.where(upper_ok, reduced, score)
        score /= self.colnorm
        j = int(np.argmax(score))
        return j if score[j] > 0.0 else -1

    def _update_binv(self, r: int, w: np.ndarray, pivot: float) -> None:
        """Product-form rank-1 update of ``B^-1`` after pivoting on row ``r``.

        Runs as an in-place BLAS ``dger`` — one fused pass over the
        Fortran-ordered inverse instead of materializing the outer product
        and subtracting it.
        """
        self.binv[r] /= pivot
        w_rest = w.copy()
        w_rest[r] = 0.0
        self.binv = _dger(
            -1.0,
            w_rest,
            self.binv[r].copy(),
            a=self.binv,
            overwrite_a=1,
        )

    def _column(self, j: int) -> np.ndarray:
        """``B^-1 A_j`` via the sparse column (O(m * nnz_col))."""
        start, end = self.a.indptr[j], self.a.indptr[j + 1]
        idx = self.a.indices[start:end]
        vals = self.a.data[start:end]
        return self.binv[:, idx] @ vals

    def run_phase(self, cost: np.ndarray, phase: int) -> LPStatus:
        """Minimize ``cost . x`` from the current basis; OPTIMAL/UNBOUNDED/ERROR."""
        for iteration in range(self.max_iters):
            if iteration % _BUDGET_POLL_ITERS == 0:
                self._poll()
            y = cost[self.basic] @ self.binv
            reduced = cost - self.at.dot(y)
            j = self._entering(reduced)
            if j < 0:
                return LPStatus.OPTIMAL
            from_upper = bool(self.at_upper[j])
            w = self._column(j)
            wsig = -w if from_upper else w

            # Two-sided ratio test: basic variables dropping to 0, basic
            # variables rising to their upper bound, and the entering
            # column's own span (a bound flip).
            lower_hit = wsig > _PIVOT_TOL
            ratios_lower = np.full(self.m, np.inf)
            np.divide(self.x_b, wsig, out=ratios_lower, where=lower_hit)
            upper_basic = self.u[self.basic]
            upper_hit = (wsig < -_PIVOT_TOL) & np.isfinite(upper_basic)
            ratios_upper = np.full(self.m, np.inf)
            np.divide(
                self.x_b - upper_basic, wsig, out=ratios_upper, where=upper_hit
            )
            row_limit = np.maximum(np.minimum(ratios_lower, ratios_upper), 0.0)
            t_rows = float(row_limit.min()) if self.m else np.inf
            span = float(self.u[j])

            if np.isfinite(span) and span <= t_rows:
                # Bound flip: the entering variable crosses to its other
                # bound before any basic variable blocks; no basis change.
                self.x_b -= span * wsig
                self.at_upper[j] = not from_upper
                self.iterations += 1
                self._note_step(span)
                continue
            if not np.isfinite(t_rows):
                return LPStatus.UNBOUNDED if phase == 2 else LPStatus.ERROR

            near = np.flatnonzero(row_limit <= t_rows + _RATIO_TIE_TOL)
            if self._bland:
                r = int(near[np.argmin(self.basic[near])])
            else:
                # Stability tie-break: largest |pivot|; argmax's first-hit
                # rule keeps the choice deterministic.
                r = int(near[np.argmax(np.abs(wsig[near]))])
            pivot = w[r]
            if abs(pivot) < _PIVOT_TOL:
                # Numerically untrustworthy pivot: refactorize and re-price.
                self._refactor()
                continue
            t = float(row_limit[r])
            leaving = int(self.basic[r])
            leaves_upper = bool(ratios_upper[r] < ratios_lower[r])

            self.x_b -= t * wsig
            self.in_basis[leaving] = False
            self.at_upper[leaving] = leaves_upper
            self.basic[r] = j
            self.in_basis[j] = True
            self.at_upper[j] = False
            self.x_b[r] = (self.u[j] - t) if from_upper else t

            self._update_binv(r, w, pivot)

            self.iterations += 1
            self._exchanges += 1
            self._note_step(t)
            if self._exchanges % _REFACTOR_EVERY == 0:
                self._refactor()
        return LPStatus.ERROR  # iteration limit: numerical trouble

    def _note_step(self, step: float) -> None:
        if step <= _TOL:
            self._degenerate_streak += 1
            if self._degenerate_streak >= _BLAND_AFTER:
                self._bland = True
        else:
            self._degenerate_streak = 0
            self._bland = False

    # -- phase drivers -------------------------------------------------------

    def phase1(self) -> LPStatus:
        """Drive the artificials to zero; retires them on success."""
        if not self.art_cols.size:
            return LPStatus.OPTIMAL
        cost1 = np.zeros(self.n)
        cost1[self.art_cols] = 1.0
        status = self.run_phase(cost1, phase=1)
        if status is not LPStatus.OPTIMAL:
            return LPStatus.ERROR
        art_value = float(cost1[self.basic] @ self.x_b)
        if art_value > _PHASE1_TOL:
            return LPStatus.INFEASIBLE
        self._pivot_out_artificials()
        self.retire_artificials()
        return LPStatus.OPTIMAL

    def _pivot_out_artificials(self) -> None:
        """Replace basic artificials by structural columns where possible.

        An artificial still basic (at value zero) after phase 1 sits in a
        redundant row.  If some nonbasic structural/slack column has a
        nonzero coefficient in that row of ``B^-1 A``, a degenerate pivot
        swaps it in; otherwise the artificial stays basic, pinned to zero
        by :meth:`retire_artificials` (its bounds become ``[0, 0]``).
        """
        art_set = set(int(col) for col in self.art_cols)
        for r in range(self.m):
            if int(self.basic[r]) not in art_set:
                continue
            row_vals = self.at.dot(self.binv[r])
            row_vals[self.in_basis] = 0.0
            row_vals[self.n0:] = 0.0  # never swap one artificial for another
            candidates = np.flatnonzero(np.abs(row_vals) > _TOL)
            if not candidates.size:
                continue  # genuinely redundant row
            j = int(candidates[0])
            w = self._column(j)
            pivot = w[r]
            if abs(pivot) < _PIVOT_TOL:
                continue
            leaving = int(self.basic[r])
            self.in_basis[leaving] = False
            self.at_upper[leaving] = False
            self.basic[r] = j
            self.in_basis[j] = True
            self.at_upper[j] = False
            self._update_binv(r, w, pivot)
            # Degenerate swap: the incoming column inherits the zero value.
            self.iterations += 1

    def phase2(self) -> LPStatus:
        """Minimize the true objective from the current feasible basis."""
        return self.run_phase(self.phase2_cost(), phase=2)

    def phase2_cost(self) -> np.ndarray:
        """The true objective extended with zero cost on artificials."""
        return np.concatenate([self.form.c, np.zeros(self.art_cols.size)])

    # -- numerical sentinels -------------------------------------------------

    def refine(self) -> None:
        """One step of iterative refinement of ``x_B`` against the basis.

        Corrects accumulated product-form drift in ``x_B`` without touching
        ``B^-1`` itself: ``x_B += B^-1 (rhs - B x_B)``.  One sparse matvec
        plus one dense matvec — the cheapest rung of the escalation ladder.
        """
        rhs = self._rhs_adjusted()
        residual = rhs - self.a[:, self.basic] @ self.x_b
        self.x_b += self.binv @ residual

    def sentinel_residuals(self, cost: np.ndarray) -> tuple[float, float]:
        """Scaled ``(basis_residual, dual_gap)`` of the current basis state.

        The basis residual is ``max |B x_B - rhs|`` via one extra sparse
        matvec — it catches a drifted ``x_B``.  The dual gap checks the
        bounded-variable strong-duality identity ``c.x = y.b + sum_U d_j
        u_j`` with ``y = c_B B^-1`` and ``U`` the nonbasic-at-upper set;
        it catches a drifted ``B^-1`` (a corrupt inverse skews ``y`` and
        ``x_B`` in inconsistent directions).  Both are exact identities in
        exact arithmetic, so their size measures drift directly.
        """
        rhs = self._rhs_adjusted()
        scale = 1.0 + float(np.abs(self.b).max(initial=0.0))
        basis_residual = float(
            np.max(np.abs(self.a[:, self.basic] @ self.x_b - rhs), initial=0.0)
        ) / scale
        y = cost[self.basic] @ self.binv
        reduced = cost - self.at.dot(y)
        x_full = np.where(self.at_upper & np.isfinite(self.u), self.u, 0.0)
        x_full[self.basic] = self.x_b
        primal_obj = float(cost @ x_full)
        upper_cols = np.flatnonzero(
            self.at_upper & ~self.in_basis & np.isfinite(self.u)
        )
        dual_obj = float(y @ self.b)
        if upper_cols.size:
            dual_obj += float(reduced[upper_cols] @ self.u[upper_cols])
        dual_gap = abs(primal_obj - dual_obj) / (1.0 + abs(primal_obj))
        return basis_residual, dual_gap

    # -- extraction ----------------------------------------------------------

    def extract(self) -> tuple[np.ndarray, Basis | None]:
        """Model-space solution vector plus a reusable basis handle."""
        form = self.form
        x_full = np.where(self.at_upper, np.where(np.isfinite(self.u), self.u, 0.0), 0.0)
        x_full[self.basic] = self.x_b
        x = x_full[: form.nvar].copy()
        has_split = form.split_col >= 0
        if has_split.any():
            idx = np.flatnonzero(has_split)
            x[idx] -= x_full[form.split_col[idx]]
        x = form.shift + form.sign * x
        if np.any(self.basic >= self.n0):
            return x, None  # a stuck artificial: basis not reusable
        at_upper_cols = np.flatnonzero(self.at_upper[: self.n0] & ~self.in_basis[: self.n0])
        handle = Basis(
            m=self.m,
            n=self.n0,
            basic=tuple(int(col) for col in self.basic),
            at_upper=tuple(int(col) for col in at_upper_cols),
        )
        return x, handle


def _solve_unconstrained(
    model: LinearProgram, form: _StandardForm, solve_ms_start: float
) -> LPSolution:
    """Rowless model: every column optimizes at a bound independently."""
    want_upper = form.c < -_TOL
    if np.any(want_upper & ~np.isfinite(form.u)):
        return LPSolution(status=LPStatus.UNBOUNDED, objective=None, x=None)
    x_full = np.where(want_upper, np.where(np.isfinite(form.u), form.u, 0.0), 0.0)
    x = x_full[: form.nvar].copy()
    has_split = form.split_col >= 0
    if has_split.any():
        idx = np.flatnonzero(has_split)
        x[idx] -= x_full[form.split_col[idx]]
    x = form.shift + form.sign * x
    c0 = np.asarray([0.0]) if model.num_variables == 0 else None
    objective = float(model.objective_value(x)) if c0 is None else 0.0
    return LPSolution(
        status=LPStatus.OPTIMAL,
        objective=objective,
        x=x,
        solve_ms=(time.perf_counter() - solve_ms_start) * 1e3,
    )


def _sentinel_report(
    model: LinearProgram, solver: _RevisedSimplex, x: np.ndarray
) -> SentinelReport:
    """Run all sentinel checks on an extracted solution (scaled residuals).

    The primal residual is re-derived from the *model* data, independent of
    every standard-form transform; the basis residual and dual gap come
    from the solver state (see :meth:`_RevisedSimplex.sentinel_residuals`).
    The objective gap is definitionally zero here — the returned objective
    is recomputed from ``x`` at extraction — so it is recorded as such.
    """
    primal, _ = solution_residuals(model, x, None)
    basis_residual, dual_gap = solver.sentinel_residuals(solver.phase2_cost())
    return SentinelReport(
        primal_residual=primal,
        objective_gap=0.0,
        dual_gap=dual_gap,
        basis_residual=basis_residual,
        tol=SENTINEL_TOL,
    )


def _run_cold(
    form: _StandardForm, deadline: float | None, context: str
) -> tuple[_RevisedSimplex, LPStatus]:
    """A fresh cold two-phase run over ``form`` (the ladder's last rung)."""
    solver = _RevisedSimplex(form, deadline, context)
    solver.cold_start()
    status1 = solver.phase1()
    if status1 is not LPStatus.OPTIMAL:
        return solver, status1
    return solver, solver.phase2()


def solve_simplex(
    model: LinearProgram,
    *,
    time_limit: float | None = None,
    warm_basis: Basis | None = None,
) -> LPSolution:
    """Solve ``model`` with the in-repo bounded-variable revised simplex.

    ``time_limit`` (seconds, across both phases) raises
    :class:`StageTimeoutError` when exceeded; the ambient solve budget is
    honored either way.  ``warm_basis`` (from a previous solution's
    ``basis``) skips phase 1 when it still describes a feasible vertex of
    this model; a stale or mismatched basis silently falls back to a cold
    phase-1 start.

    Every OPTIMAL answer passes the numerical sentinels before it is
    returned; unrepairable drift raises
    :class:`~repro.core.errors.NumericalDriftError` instead of handing
    back a corrupted solution (see the module docstring for the ladder).
    """
    tic = time.perf_counter()
    deadline = time.monotonic() + time_limit if time_limit is not None else None
    context = f" on LP {model.name or '<unnamed>'} [{model.dims()}]"
    if model.num_variables == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, x=np.empty(0))

    form = _build_standard_form(model)
    if form.b.size == 0:
        return _solve_unconstrained(model, form, tic)

    solver = _RevisedSimplex(form, deadline, context)
    warm_ok = False
    if warm_basis is not None:
        try:
            warm_ok = solver.try_warm_start(warm_basis)
        except _SingularBasisError:
            warm_ok = False
    if not warm_ok:
        solver.cold_start()
        status1 = solver.phase1()
        if status1 is LPStatus.INFEASIBLE:
            return LPSolution(
                status=LPStatus.INFEASIBLE,
                objective=None,
                x=None,
                iterations=solver.iterations,
                refactorizations=solver.refactorizations,
                solve_ms=(time.perf_counter() - tic) * 1e3,
            )
        if status1 is not LPStatus.OPTIMAL:
            return LPSolution(
                status=LPStatus.ERROR,
                objective=None,
                x=None,
                message="phase-1 iteration limit",
                iterations=solver.iterations,
                refactorizations=solver.refactorizations,
                solve_ms=(time.perf_counter() - tic) * 1e3,
            )

    status = solver.phase2()
    if status is LPStatus.UNBOUNDED:
        return LPSolution(
            status=LPStatus.UNBOUNDED,
            objective=None,
            x=None,
            iterations=solver.iterations,
            refactorizations=solver.refactorizations,
            solve_ms=(time.perf_counter() - tic) * 1e3,
            warm_started=warm_ok,
        )
    if status is not LPStatus.OPTIMAL:
        return LPSolution(
            status=LPStatus.ERROR,
            objective=None,
            x=None,
            message="phase-2 iteration limit",
            iterations=solver.iterations,
            refactorizations=solver.refactorizations,
            solve_ms=(time.perf_counter() - tic) * 1e3,
            warm_started=warm_ok,
        )

    x, handle = solver.extract()
    sentinel = _sentinel_report(model, solver, x)
    escalations: list[str] = []
    iterations = solver.iterations
    refactorizations = solver.refactorizations

    if not sentinel.ok:
        # Rung 1: iterative refinement of x_B against the current basis.
        escalations.append("refine")
        solver.refine()
        x, handle = solver.extract()
        sentinel = _sentinel_report(model, solver, x)
    if not sentinel.ok:
        # Rung 2: rebuild B^-1 from scratch and re-price phase 2.
        escalations.append("refactorize")
        try:
            solver._refactor()
            if solver.phase2() is LPStatus.OPTIMAL:
                x, handle = solver.extract()
                sentinel = _sentinel_report(model, solver, x)
        except _SingularBasisError:
            pass
        iterations = solver.iterations
        refactorizations = solver.refactorizations
    if not sentinel.ok and warm_ok:
        # Rung 3: the warm start itself is suspect — cold re-solve.
        escalations.append("cold")
        cold_solver, cold_status = _run_cold(form, deadline, context)
        iterations += cold_solver.iterations
        refactorizations += cold_solver.refactorizations
        if cold_status is LPStatus.OPTIMAL:
            cold_x, cold_handle = cold_solver.extract()
            cold_sentinel = _sentinel_report(model, cold_solver, cold_x)
            if cold_sentinel.ok:
                x, handle, sentinel = cold_x, cold_handle, cold_sentinel
                warm_ok = False
    if not sentinel.ok:
        raise NumericalDriftError(
            f"simplex result failed its numerical sentinels{context}: "
            + sentinel.describe(),
            residuals=sentinel.residuals(),
            escalations=tuple(escalations),
            stage="lp",
            backend="simplex",
            elapsed=time.perf_counter() - tic,
        )
    sentinel = replace(
        sentinel, repairs=len(escalations), escalations=tuple(escalations)
    )

    return LPSolution(
        status=LPStatus.OPTIMAL,
        objective=float(model.objective_value(x)),
        x=x,
        basis=handle,
        iterations=iterations,
        refactorizations=refactorizations,
        solve_ms=(time.perf_counter() - tic) * 1e3,
        warm_started=warm_ok,
        sentinel=sentinel,
    )


class SimplexBackend:
    """Callable-object form of :func:`solve_simplex` for the backend registry."""

    name = "simplex"

    def __call__(
        self,
        model: LinearProgram,
        *,
        time_limit: float | None = None,
        warm_basis: Basis | None = None,
    ) -> LPSolution:
        return solve_simplex(model, time_limit=time_limit, warm_basis=warm_basis)

    def __repr__(self) -> str:  # pragma: no cover
        return "SimplexBackend()"
