"""A self-contained dense two-phase simplex LP solver.

This is the library's own LP substrate: an independently implemented solver
used to cross-check the HiGHS backend (tests assert both find the same
optimum on random LPs and on small TISE relaxations) and benched against it
in the ABL3 ablation.  It is a textbook full-tableau two-phase simplex with
Bland's anti-cycling rule — O(rows x cols) memory, intended for small and
medium models, not for the large benched TISE LPs (use HiGHS there).

Model handling:

* variables with finite lower bounds are shifted to zero;
* variables with ``lb = -inf`` are split into a difference of nonnegatives;
* finite upper bounds become extra ``<=`` rows;
* GE/EQ rows receive artificial variables in phase 1.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.errors import StageTimeoutError
from ..core.resilience import check_budget
from ..core.tolerance import EPS
from .model import LinearProgram, LPSolution, LPStatus

__all__ = ["SimplexBackend", "solve_simplex"]

_TOL = EPS
_PHASE1_TOL = 100 * EPS  # phase-1 objective accumulates m pivots of error
_MAX_ITERS_FACTOR = 200
_BUDGET_POLL_ITERS = 64  # pivot iterations between wall-clock checks


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """In-place pivot on ``tableau[row, col]``."""
    tableau[row] /= tableau[row, col]
    pivot_col = tableau[:, col].copy()
    pivot_col[row] = 0.0
    # Rank-1 update of every other row (vectorized; this is the hot loop).
    tableau -= np.outer(pivot_col, tableau[row])
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    max_iters: int,
    deadline: float | None = None,
    context: str = "",
) -> LPStatus:
    """Optimize ``min cost.x`` over the tableau in place; returns status.

    ``tableau`` is ``(m, n+1)`` with the rhs in the last column; ``basis``
    holds the basic column of each row.  Uses Bland's rule.  Every
    ``_BUDGET_POLL_ITERS`` pivots the loop polls the ambient solve budget
    and the explicit ``deadline`` (monotonic seconds), raising
    :class:`StageTimeoutError` when either is exhausted.
    """
    m, _ = tableau.shape
    n = tableau.shape[1] - 1
    for iteration in range(max_iters):
        if iteration % _BUDGET_POLL_ITERS == 0:
            check_budget("lp", "simplex")
            if deadline is not None and time.monotonic() > deadline:
                raise StageTimeoutError(
                    f"simplex exceeded its time limit{context}",
                    stage="lp",
                    backend="simplex",
                )
        # Reduced costs: c_j - c_B . B^-1 A_j  (tableau rows already are B^-1 A).
        c_b = cost[basis]
        reduced = cost[:n] - c_b @ tableau[:, :n]
        entering = -1
        for j in range(n):  # Bland: smallest index with negative reduced cost
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return LPStatus.OPTIMAL
        col = tableau[:, entering]
        rhs = tableau[:, n]
        best_ratio = np.inf
        leaving = -1
        for i in range(m):
            if col[i] > _TOL:
                ratio = rhs[i] / col[i]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return LPStatus.UNBOUNDED
        _pivot(tableau, basis, leaving, entering)
    return LPStatus.ERROR  # iteration limit: numerical trouble


def solve_simplex(
    model: LinearProgram, *, time_limit: float | None = None
) -> LPSolution:
    """Solve ``model`` with the in-repo two-phase simplex.

    ``time_limit`` (seconds, across both phases) raises
    :class:`StageTimeoutError` when exceeded; the ambient solve budget is
    honored either way.
    """
    deadline = time.monotonic() + time_limit if time_limit is not None else None
    context = f" on LP {model.name or '<unnamed>'} [{model.dims()}]"
    c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_standard_arrays()
    nvar = model.num_variables
    if nvar == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, x=np.empty(0))

    # ------------------------------------------------------------------
    # Variable transformation to x' >= 0.
    # x_i = lb_i + x'_i                        when lb_i finite
    # x_i = x'_pos - x'_neg                    when lb_i = -inf
    # ------------------------------------------------------------------
    free = ~np.isfinite(lb)
    shift = np.where(free, 0.0, lb)
    n_std = nvar + int(free.sum())
    # map: column i of original -> (pos column, optional neg column)
    neg_col = np.full(nvar, -1, dtype=int)
    next_col = nvar
    for i in np.flatnonzero(free):
        neg_col[i] = next_col
        next_col += 1

    def expand_matrix(mat: np.ndarray) -> np.ndarray:
        out = np.zeros((mat.shape[0], n_std))
        out[:, :nvar] = mat
        for i in np.flatnonzero(free):
            out[:, neg_col[i]] = -mat[:, i]
        return out

    rows_a: list[np.ndarray] = []
    rows_b: list[float] = []
    row_sense: list[str] = []  # "le" or "eq"

    if a_ub is not None:
        dense = np.asarray(a_ub.todense())
        adj = b_ub - dense @ shift
        dense = expand_matrix(dense)
        for i in range(dense.shape[0]):
            rows_a.append(dense[i])
            rows_b.append(float(adj[i]))
            row_sense.append("le")
    if a_eq is not None:
        dense = np.asarray(a_eq.todense())
        adj = b_eq - dense @ shift
        dense = expand_matrix(dense)
        for i in range(dense.shape[0]):
            rows_a.append(dense[i])
            rows_b.append(float(adj[i]))
            row_sense.append("eq")
    # Finite upper bounds become rows  x'_i <= ub_i - lb_i.
    for i in range(nvar):
        if np.isfinite(ub[i]):
            row = np.zeros(n_std)
            row[i] = 1.0
            if free[i]:
                row[neg_col[i]] = -1.0
            rows_a.append(row)
            rows_b.append(float(ub[i] - shift[i]))
            row_sense.append("le")

    c_std = np.zeros(n_std)
    c_std[:nvar] = c
    for i in np.flatnonzero(free):
        c_std[neg_col[i]] = -c[i]
    const_term = float(c @ shift)

    m = len(rows_a)
    if m == 0:
        # Unconstrained except x' >= 0: optimum sets x'_j = 0 unless c_j < 0.
        if np.any(c_std < -_TOL):
            return LPSolution(status=LPStatus.UNBOUNDED, objective=None, x=None)
        x = shift.copy()
        return LPSolution(
            status=LPStatus.OPTIMAL, objective=const_term, x=x
        )

    a = np.vstack(rows_a)
    b = np.asarray(rows_b)

    # Normalize to b >= 0.
    for i in range(m):
        if b[i] < 0:
            a[i] *= -1.0
            b[i] *= -1.0
            row_sense[i] = {"le": "ge", "ge": "le", "eq": "eq"}[row_sense[i]]

    # Slack / surplus / artificial columns.
    cols: list[np.ndarray] = [a]
    n_slack = sum(1 for s in row_sense if s in ("le", "ge"))
    slack = np.zeros((m, n_slack))
    k = 0
    slack_basic: dict[int, int] = {}  # row -> slack column index (if +1 slack)
    for i, s in enumerate(row_sense):
        if s == "le":
            slack[i, k] = 1.0
            slack_basic[i] = n_std + k
            k += 1
        elif s == "ge":
            slack[i, k] = -1.0
            k += 1
    cols.append(slack)

    art_rows = [i for i in range(m) if i not in slack_basic]
    art = np.zeros((m, len(art_rows)))
    art_cols: list[int] = []
    for j, i in enumerate(art_rows):
        art[i, j] = 1.0
        art_cols.append(n_std + n_slack + j)
    cols.append(art)

    full = np.hstack(cols)
    total_cols = full.shape[1]
    tableau = np.hstack([full, b.reshape(-1, 1)])

    basis = np.zeros(m, dtype=int)
    for i in range(m):
        basis[i] = slack_basic.get(i, -1)
    for j, i in enumerate(art_rows):
        basis[i] = art_cols[j]

    max_iters = _MAX_ITERS_FACTOR * (m + total_cols)

    # Phase 1: minimize sum of artificials.
    if art_rows:
        cost1 = np.zeros(total_cols)
        for col in art_cols:
            cost1[col] = 1.0
        status = _run_simplex(tableau, basis, cost1, max_iters, deadline, context)
        if status is LPStatus.ERROR:
            return LPSolution(
                status=LPStatus.ERROR, objective=None, x=None,
                message="phase-1 iteration limit",
            )
        phase1_val = float(cost1[basis] @ tableau[:, -1])
        if phase1_val > _PHASE1_TOL:
            return LPSolution(status=LPStatus.INFEASIBLE, objective=None, x=None)
        # Drive any remaining artificial out of the basis.
        art_set = set(art_cols)
        for i in range(m):
            if basis[i] in art_set:
                pivoted = False
                for j in range(n_std + n_slack):
                    if abs(tableau[i, j]) > _TOL:
                        _pivot(tableau, basis, i, j)
                        pivoted = True
                        break
                if not pivoted:
                    # Redundant row; artificial stays basic at value 0 — safe.
                    pass

    # Phase 2: original objective; artificials forbidden via +inf-ish cost.
    cost2 = np.zeros(total_cols)
    cost2[:n_std] = c_std
    for col in art_cols:
        cost2[col] = 1e18  # any positive cost keeps zero-valued artificials at 0
    status = _run_simplex(tableau, basis, cost2, max_iters, deadline, context)
    if status is LPStatus.UNBOUNDED:
        return LPSolution(status=LPStatus.UNBOUNDED, objective=None, x=None)
    if status is LPStatus.ERROR:
        return LPSolution(
            status=LPStatus.ERROR, objective=None, x=None,
            message="phase-2 iteration limit",
        )

    x_std = np.zeros(total_cols)
    x_std[basis] = tableau[:, -1]
    x = x_std[:nvar].copy()
    for i in np.flatnonzero(free):
        x[i] -= x_std[neg_col[i]]
    x += shift
    return LPSolution(
        status=LPStatus.OPTIMAL,
        objective=float(c @ x),
        x=x,
    )


class SimplexBackend:
    """Callable-object form of :func:`solve_simplex` for the backend registry."""

    name = "simplex"

    def __call__(
        self, model: LinearProgram, *, time_limit: float | None = None
    ) -> LPSolution:
        return solve_simplex(model, time_limit=time_limit)

    def __repr__(self) -> str:  # pragma: no cover
        return "SimplexBackend()"
