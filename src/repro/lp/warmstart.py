"""Reusable simplex bases and the stash that carries them between solves.

The revised simplex (:mod:`repro.lp.simplex`) describes an optimal vertex by
its *basis*: which standard-form columns are basic (one per row) and which
nonbasic columns are parked at their finite upper bound.  That description
is tiny — two integer tuples — and is exactly what a later solve of the same
(or a near-identical) LP needs to restart from: re-factorize ``B = A[:,
basic]``, check the implied point is still feasible, and resume phase 2.  A
solve warm-started from its *own* optimal basis prices once, pivots zero
times, and returns the bit-identical solution.

:class:`BasisStash` is the carrier: a small, thread-safe LRU keyed by an
*exact content fingerprint* of the instance (see :func:`content_key`).  The
exact-key discipline is what keeps warm starts bit-identical to cold
solves at the pipeline level — a hit means the very same LP is being
re-solved, so the restart is a zero-pivot replay; a miss falls through to a
cold solve.  A *stale* basis (dimensions match but the point it implies is
infeasible for the new data) is handled one level down: the solver falls
back to phase 1, so correctness never depends on the stash's keying.

Stashes hold a :class:`threading.Lock`, so they are per-process objects and
deliberately **not** picklable state: sweeps build one per worker process,
the serve layer one per worker thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.atomicio import content_key

__all__ = ["Basis", "BasisStash", "content_key", "default_stash"]


@dataclass(frozen=True)
class Basis:
    """A reusable simplex basis handle for one standard-form LP shape.

    Attributes:
        m: number of standard-form rows the basis belongs to.
        n: number of structural + slack columns (artificials excluded —
            a finished solve never records an artificial as basic).
        basic: the basic column of each row, in row order.
        at_upper: nonbasic columns parked at their finite upper bound.
    """

    m: int
    n: int
    basic: tuple[int, ...]
    at_upper: tuple[int, ...] = ()

    def matches(self, m: int, n: int) -> bool:
        """True when this basis is shaped for an ``m x n`` standard form."""
        return (
            self.m == m
            and self.n == n
            and len(self.basic) == m
            and all(0 <= col < n for col in self.basic)
            and all(0 <= col < n for col in self.at_upper)
        )


class BasisStash:
    """A small thread-safe LRU of :class:`Basis` handles, keyed by content.

    ``get`` counts hits/misses and refreshes recency; ``put`` evicts the
    least-recently-used entry beyond ``maxsize``; ``discard`` evicts one
    key on demand — the numerical-sentinel layer calls it when a
    warm-started solve drifts, so a poisoned basis never seeds a second
    solve.  Both eviction paths bump the ``evictions`` counter.  The repr
    is stable (no object identity) so configs holding a stash keep
    reproducible fingerprints (sweep checkpoint journals hash
    ``repr(config)``).
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Basis] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Basis | None:
        """The stashed basis for ``key`` (refreshing recency), or None."""
        with self._lock:
            basis = self._entries.get(key)
            if basis is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return basis

    def put(self, key: str, basis: Basis) -> None:
        """Stash ``basis`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            self._entries[key] = basis
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def discard(self, key: str) -> bool:
        """Evict ``key`` (a basis that earned distrust); True if present."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._evictions += 1
            return True

    def clear(self) -> int:
        """Evict everything (a failed certificate indicts the whole stash).

        Returns the number of entries evicted; each counts as an eviction.
        """
        with self._lock:
            evicted = len(self._entries)
            self._entries.clear()
            self._evictions += evicted
            return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for ``/stats``, sweep reports, and benches."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        return f"BasisStash(maxsize={self.maxsize})"


_DEFAULT_STASH_LOCK = threading.Lock()
_DEFAULT_STASH: BasisStash | None = None


def default_stash() -> BasisStash:
    """The process-local shared stash (created on first use).

    Sweeps enable warm starting with a boolean config flag rather than a
    stash object (configs must stay picklable across process pools); each
    worker process then lazily materializes this per-process stash, which
    is how "the previous shard's basis" is carried forward within a worker.
    """
    global _DEFAULT_STASH
    with _DEFAULT_STASH_LOCK:
        if _DEFAULT_STASH is None:
            _DEFAULT_STASH = BasisStash()
        return _DEFAULT_STASH
