"""Numerical sentinels: independent residual checks of LP solutions.

The revised simplex (:mod:`repro.lp.simplex`) maintains an explicit basis
inverse updated by rank-1 product-form transformations — a classically
drift-prone scheme.  The sentinels here are the *independent* half of the
defense: they re-derive residuals from the model data and the claimed
solution alone, never trusting the solver's internal state.

Three checks, all scaled to be unitless:

* **primal residual** — the worst constraint/bound violation of ``x``
  (re-derived via :meth:`LinearProgram.constraint_violation`), divided by
  ``1 + max |b|``;
* **objective gap** — ``|c.x - objective|`` versus the solver's reported
  optimum, divided by ``1 + |objective|``;
* **dual gap** — when duals are available, the strong-duality defect
  ``|objective - (b_ub . y_ub + b_eq . y_eq)|`` over the same scale (only
  meaningful when no finite variable upper bounds contribute reduced-cost
  terms, so it is skipped otherwise).

The simplex adds two solver-side residuals the model alone cannot see —
basis consistency ``max |B x_B - b|`` and the bounded-variable duality
identity — and records all outcomes on :class:`SentinelReport`, which rides
``LPSolution.telemetry()`` into the resilience layer's attempt log.

:data:`SENTINEL_TOL` is deliberately far looser than machine epsilon and
far tighter than any violation that could round into a wrong schedule: a
clean double-precision solve sits many orders of magnitude below it, and
real drift (a corrupted ``B^-1``, a bit-flipped solution vector) sits many
above, so the classification has a wide dead band on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import LinearProgram, LPSolution

__all__ = ["SENTINEL_TOL", "SentinelReport", "check_solution", "solution_residuals"]

SENTINEL_TOL = 1e-6


@dataclass(frozen=True)
class SentinelReport:
    """Outcome of the numerical-sentinel checks on one LP solution.

    All residuals are scaled (unitless); ``None`` means the check was not
    applicable (no duals, no basis).  ``repairs`` is the escalation depth
    that produced the accepted solution: 0 clean on first check, 1 after
    iterative refinement, 2 after a forced refactorization, 3 after a cold
    re-solve.  ``escalations`` names the steps actually taken.
    """

    primal_residual: float
    objective_gap: float
    dual_gap: float | None = None
    basis_residual: float | None = None
    tol: float = SENTINEL_TOL
    repairs: int = 0
    escalations: tuple[str, ...] = ()

    @property
    def worst(self) -> float:
        """The largest residual across all applicable checks."""
        residuals = [self.primal_residual, self.objective_gap]
        if self.dual_gap is not None:
            residuals.append(self.dual_gap)
        if self.basis_residual is not None:
            residuals.append(self.basis_residual)
        return max(residuals)

    @property
    def ok(self) -> bool:
        return self.worst <= self.tol

    def residuals(self) -> dict[str, float]:
        """Name-to-value mapping of every applicable residual."""
        out = {
            "primal_residual": self.primal_residual,
            "objective_gap": self.objective_gap,
        }
        if self.dual_gap is not None:
            out["dual_gap"] = self.dual_gap
        if self.basis_residual is not None:
            out["basis_residual"] = self.basis_residual
        return out

    def telemetry(self) -> dict[str, float]:
        """Flat JSON-ready counters, prefixed for the attempt-log namespace."""
        data = {f"sentinel_{k}": float(v) for k, v in self.residuals().items()}
        data["sentinel_ok"] = 1.0 if self.ok else 0.0
        data["sentinel_repairs"] = float(self.repairs)
        return data

    def describe(self) -> str:
        """One-line human summary (drift logs, error messages)."""
        parts = [f"{k}={v:.3e}" for k, v in self.residuals().items()]
        tail = f" after {'+'.join(self.escalations)}" if self.escalations else ""
        status = "ok" if self.ok else f"DRIFT>{self.tol:g}"
        return f"[{status}] {' '.join(parts)}{tail}"


def solution_residuals(
    model: LinearProgram, x: np.ndarray, objective: float | None = None
) -> tuple[float, float]:
    """Scaled ``(primal_residual, objective_gap)`` of point ``x``.

    Re-derives both from the model data alone, so a drifted solver state
    cannot vouch for itself.  ``objective_gap`` is 0.0 when no claimed
    objective is supplied.
    """
    _, _, b_ub, _, b_eq, _, _ = model.to_standard_arrays()
    scale = 1.0
    if b_ub is not None:
        scale = max(scale, float(np.abs(b_ub).max(initial=0.0)))
    if b_eq is not None:
        scale = max(scale, float(np.abs(b_eq).max(initial=0.0)))
    primal = float(model.constraint_violation(x)) / (1.0 + scale)
    gap = 0.0
    if objective is not None:
        actual = float(model.objective_value(x))
        gap = abs(actual - float(objective)) / (1.0 + abs(actual))
    return primal, gap


def check_solution(
    model: LinearProgram, solution: LPSolution, *, tol: float = SENTINEL_TOL
) -> SentinelReport:
    """Independently re-check an OPTIMAL :class:`LPSolution` against its model.

    Raises :class:`ValueError` for solutions without a point (non-OPTIMAL
    statuses have nothing to check).  Backends that supply duals also get
    the strong-duality cross-check, skipped when finite variable upper
    bounds make the plain ``b . y`` identity inapplicable.
    """
    if solution.x is None:
        raise ValueError(
            f"no solution point to check (status={solution.status.value})"
        )
    primal, gap = solution_residuals(model, solution.x, solution.objective)
    dual_gap: float | None = None
    if (
        solution.objective is not None
        and (solution.dual_ineq is not None or solution.dual_eq is not None)
    ):
        _, _, b_ub, _, b_eq, _, ub = model.to_standard_arrays()
        if not np.isfinite(ub).any():
            dual_value = solution.dual_objective(b_ub, b_eq)
            if dual_value is not None:
                dual_gap = abs(float(solution.objective) - dual_value) / (
                    1.0 + abs(float(solution.objective))
                )
    return SentinelReport(
        primal_residual=primal,
        objective_gap=gap,
        dual_gap=dual_gap,
        tol=tol,
    )
