"""Linear-programming substrate.

* :mod:`repro.lp.model` — solver-agnostic sparse LP builder.
* :mod:`repro.lp.highs` — SciPy/HiGHS backend (default).
* :mod:`repro.lp.simplex` — in-repo dense two-phase simplex (cross-check
  substrate, ABL3 ablation).
"""

from __future__ import annotations

from typing import Protocol

from .highs import HighsBackend, solve_highs
from .model import LinearProgram, LPSolution, LPStatus, Sense
from .simplex import SimplexBackend, solve_simplex

__all__ = [
    "LinearProgram",
    "LPSolution",
    "LPStatus",
    "Sense",
    "solve_highs",
    "solve_simplex",
    "HighsBackend",
    "SimplexBackend",
    "LPBackend",
    "get_backend",
    "BACKENDS",
]


class LPBackend(Protocol):
    """Backend interface: solve a model, optionally under a time limit.

    ``time_limit`` is wall-clock seconds for this one solve; backends raise
    :class:`~repro.core.errors.StageTimeoutError` when they hit it (and
    also honor the ambient :func:`~repro.core.resilience.budget_scope`).
    """

    def __call__(
        self, model: LinearProgram, *, time_limit: float | None = None
    ) -> LPSolution: ...

BACKENDS: dict[str, LPBackend] = {
    "highs": HighsBackend(),
    "simplex": SimplexBackend(),
}


def get_backend(name: str) -> LPBackend:
    """Look up an LP backend by name (``"highs"`` or ``"simplex"``)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown LP backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
