"""Linear-programming substrate.

* :mod:`repro.lp.model` — solver-agnostic sparse LP builder.
* :mod:`repro.lp.highs` — SciPy/HiGHS backend (default).
* :mod:`repro.lp.simplex` — in-repo bounded-variable revised simplex
  (cross-check substrate, ABL3 ablation, warm-startable).
* :mod:`repro.lp.tableau` — the legacy dense full-tableau simplex, kept as
  the benchmark yardstick the revised solver is measured against.
* :mod:`repro.lp.warmstart` — reusable :class:`Basis` handles and the
  :class:`BasisStash` that carries them between solves.
* :mod:`repro.lp.sentinel` — independent post-solve residual checks
  (primal/dual/basis drift detection) behind the revised simplex's
  escalation ladder.
"""

from __future__ import annotations

from typing import Protocol

from .highs import HighsBackend, solve_highs
from .model import LinearProgram, LPSolution, LPStatus, Sense
from .sentinel import SENTINEL_TOL, SentinelReport, check_solution
from .simplex import SimplexBackend, solve_simplex
from .tableau import TableauBackend, solve_tableau
from .warmstart import Basis, BasisStash, content_key, default_stash

__all__ = [
    "LinearProgram",
    "LPSolution",
    "LPStatus",
    "Sense",
    "Basis",
    "BasisStash",
    "SENTINEL_TOL",
    "SentinelReport",
    "check_solution",
    "content_key",
    "default_stash",
    "solve_highs",
    "solve_simplex",
    "solve_tableau",
    "HighsBackend",
    "SimplexBackend",
    "TableauBackend",
    "LPBackend",
    "get_backend",
    "BACKENDS",
]


class LPBackend(Protocol):
    """Backend interface: solve a model, optionally under a time limit.

    ``time_limit`` is wall-clock seconds for this one solve; backends raise
    :class:`~repro.core.errors.StageTimeoutError` when they hit it (and
    also honor the ambient :func:`~repro.core.resilience.budget_scope`).

    ``warm_basis`` is a previous solution's :class:`Basis` hint.  Backends
    that cannot restart from one (HiGHS, the legacy tableau) accept and
    ignore it; the revised simplex resumes phase 2 from it when it still
    describes a feasible vertex and silently falls back to a cold solve
    otherwise — so callers may always pass whatever basis they have.
    """

    def __call__(
        self,
        model: LinearProgram,
        *,
        time_limit: float | None = None,
        warm_basis: Basis | None = None,
    ) -> LPSolution: ...

BACKENDS: dict[str, LPBackend] = {
    "highs": HighsBackend(),
    "simplex": SimplexBackend(),
    "tableau": TableauBackend(),
}


def get_backend(name: str) -> LPBackend:
    """Look up an LP backend by name (``"highs"``, ``"simplex"``, ``"tableau"``)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown LP backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
