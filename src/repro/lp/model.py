"""A small linear-program model builder.

The TISE relaxation of Section 3 and the machine-minimization LPs of
Section 4's black boxes are assembled through this builder, which keeps
constraint matrices sparse (COO triplets) so that instances with tens of
thousands of ``X_{jt}`` variables stay cheap to construct — the hot path is
matrix assembly, so triplets are buffered in flat Python lists and converted
to numpy arrays once (see the hpc-parallel guide: vectorize the bulk
operation, not the bookkeeping).

The model is solver-agnostic: :mod:`repro.lp.highs` solves it with SciPy's
HiGHS interface and :mod:`repro.lp.simplex` with the in-repo dense simplex.
Both return an :class:`LPSolution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from scipy import sparse

from ..core.errors import SolverError
from .warmstart import Basis

if TYPE_CHECKING:  # annotation only: sentinel imports this module
    from .sentinel import SentinelReport

__all__ = [
    "Sense",
    "LPStatus",
    "LPSolution",
    "LinearProgram",
]


class Sense(Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class LPStatus(Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class LPSolution:
    """Result of solving a :class:`LinearProgram`.

    ``x`` is indexed like the model's variables; ``objective`` is the
    minimized objective value.  Both are None unless ``status`` is OPTIMAL.

    ``dual_ineq`` / ``dual_eq`` are the constraint marginals (dual values)
    in the exported standard-form row order, when the backend provides them
    (HiGHS does; the in-repo simplex does not).  For a minimization with
    ``A_ub x <= b_ub`` the inequality marginals are nonpositive and, when
    all variable upper bounds are infinite, strong duality reads
    ``objective == b_ub . dual_ineq + b_eq . dual_eq`` — an independently
    checkable certificate of the reported optimum (and hence of every lower
    bound derived from it).

    The telemetry tail (``compare=False`` — two solves of the same model
    are "equal" regardless of how fast they ran):

    * ``basis`` — the optimal :class:`~repro.lp.warmstart.Basis` when the
      backend can express one (the revised simplex does), reusable as the
      ``warm_basis`` of a later solve;
    * ``iterations`` — pivot/bound-flip count (HiGHS: its ``nit``);
    * ``refactorizations`` — basis factorizations beyond the free identity
      start (simplex only);
    * ``solve_ms`` — wall-clock milliseconds inside the backend;
    * ``warm_started`` — True when a supplied warm basis was actually used
      (False also covers the crossover-to-phase-1 fallback on stale bases);
    * ``sentinel`` — the post-solve numerical-sentinel verdict
      (:class:`~repro.lp.sentinel.SentinelReport`) for backends that run
      the residual checks (the revised simplex does); None otherwise.
    """

    status: LPStatus
    objective: float | None
    x: np.ndarray | None
    message: str = ""
    dual_ineq: np.ndarray | None = None
    dual_eq: np.ndarray | None = None
    basis: Basis | None = field(default=None, compare=False)
    iterations: int = field(default=0, compare=False)
    refactorizations: int = field(default=0, compare=False)
    solve_ms: float = field(default=0.0, compare=False)
    warm_started: bool = field(default=False, compare=False)
    sentinel: "SentinelReport | None" = field(default=None, compare=False)

    def telemetry(self) -> dict[str, float]:
        """The numeric solver counters as a flat JSON-ready mapping."""
        data = {
            "iterations": float(self.iterations),
            "refactorizations": float(self.refactorizations),
            "solve_ms": float(self.solve_ms),
            "warm_started": 1.0 if self.warm_started else 0.0,
        }
        if self.sentinel is not None:
            data.update(self.sentinel.telemetry())
        return data

    def dual_objective(
        self, b_ub: np.ndarray | None, b_eq: np.ndarray | None
    ) -> float | None:
        """``b_ub . y_ub + b_eq . y_eq`` or None when duals are unavailable."""
        if self.dual_ineq is None and self.dual_eq is None:
            return None
        total = 0.0
        if b_ub is not None and self.dual_ineq is not None:
            total += float(np.dot(b_ub, self.dual_ineq))
        if b_eq is not None and self.dual_eq is not None:
            total += float(np.dot(b_eq, self.dual_eq))
        return total

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    def value(self, index: int) -> float:
        if self.x is None:
            raise SolverError(f"no solution available (status={self.status.value})")
        return float(self.x[index])


class LinearProgram:
    """Incrementally built LP: ``min c.x  s.t.  A x {<=,>=,==} b, lb <= x <= ub``.

    Variables are referenced by the integer index returned from
    :meth:`add_variable`; optional names support debugging and tests.

    ``track_names=False`` turns off name storage entirely: on hot builder
    paths (the TISE LP emits one f-string per variable otherwise) name
    construction is measurable overhead, and the solver backends never need
    names.  Nameless models answer :meth:`variable_name` with the positional
    fallback ``x<index>``.
    """

    def __init__(self, name: str = "", *, track_names: bool = True) -> None:
        self.name = name
        self._obj: list[float] = []
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._names: list[str] | None = [] if track_names else None
        # Constraint triplets, kept flat for cheap bulk conversion.
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []
        self._senses: list[Sense] = []
        self._rhs: list[float] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._obj)

    @property
    def num_constraints(self) -> int:
        return len(self._rhs)

    @property
    def num_nonzeros(self) -> int:
        """Structurally nonzero coefficients across all constraint rows."""
        return len(self._vals)

    @property
    def track_names(self) -> bool:
        return self._names is not None

    def dims(self) -> str:
        """Compact ``rows x cols (nnz)`` summary for diagnostics."""
        return (
            f"{self.num_constraints}x{self.num_variables} "
            f"({self.num_nonzeros} nnz)"
        )

    def add_variable(
        self,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float = np.inf,
        name: str = "",
    ) -> int:
        """Add one variable; returns its index."""
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        self._obj.append(float(objective))
        self._lb.append(float(lower))
        self._ub.append(float(upper))
        if self._names is not None:
            self._names.append(name or f"x{len(self._obj) - 1}")
        return len(self._obj) - 1

    def add_variables(
        self, count: int, objective: float = 0.0, lower: float = 0.0,
        upper: float = np.inf, prefix: str = "x",
    ) -> list[int]:
        """Add ``count`` identically-bounded variables; returns their indices."""
        return [
            self.add_variable(objective, lower, upper, name=f"{prefix}{k}")
            for k in range(count)
        ]

    def add_constraint(
        self,
        terms: Iterable[tuple[int, float]],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> int:
        """Add one constraint ``sum coeff*x[idx] <sense> rhs``; returns row index."""
        row = len(self._rhs)
        nvar = self.num_variables
        for idx, coeff in terms:
            if not (0 <= idx < nvar):
                raise IndexError(f"constraint {name!r}: variable index {idx} out of range")
            # Exact comparison is deliberate: this drops structurally-zero
            # coefficients from the sparse matrix, never near-zero ones.
            if coeff != 0.0:  # repro-lint: disable=ISE001
                self._rows.append(row)
                self._cols.append(idx)
                self._vals.append(float(coeff))
        self._senses.append(sense)
        self._rhs.append(float(rhs))
        return row

    def variable_name(self, index: int) -> str:
        if not (0 <= index < self.num_variables):
            raise IndexError(f"variable index {index} out of range")
        if self._names is None:
            return f"x{index}"
        return self._names[index]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_standard_arrays(
        self,
    ) -> tuple[np.ndarray, sparse.csr_matrix | None, np.ndarray | None,
               sparse.csr_matrix | None, np.ndarray | None, np.ndarray, np.ndarray]:
        """Export ``(c, A_ub, b_ub, A_eq, b_eq, lb, ub)``.

        GE rows are negated into LE form.  Matrix blocks are None when the
        model has no rows of that kind (SciPy's expected convention).
        """
        nvar = self.num_variables
        c = np.asarray(self._obj, dtype=float)
        lb = np.asarray(self._lb, dtype=float)
        ub = np.asarray(self._ub, dtype=float)

        rows = np.asarray(self._rows, dtype=np.int64)
        cols = np.asarray(self._cols, dtype=np.int64)
        vals = np.asarray(self._vals, dtype=float)
        senses = self._senses
        rhs = np.asarray(self._rhs, dtype=float)

        ub_row_ids = [i for i, s in enumerate(senses) if s is not Sense.EQ]
        eq_row_ids = [i for i, s in enumerate(senses) if s is Sense.EQ]

        def build(selected: list[int], flip_ge: bool) -> tuple[sparse.csr_matrix | None, np.ndarray | None]:
            if not selected:
                return None, None
            remap = {orig: new for new, orig in enumerate(selected)}
            if len(rows):
                mask = np.isin(rows, np.asarray(selected, dtype=np.int64))
                sel_rows = rows[mask]
                sel_cols = cols[mask]
                sel_vals = vals[mask].copy()
            else:
                sel_rows = np.empty(0, dtype=np.int64)
                sel_cols = np.empty(0, dtype=np.int64)
                sel_vals = np.empty(0, dtype=float)
            new_rows = np.asarray([remap[r] for r in sel_rows], dtype=np.int64)
            b = rhs[np.asarray(selected, dtype=np.int64)].copy()
            if flip_ge:
                ge_orig = {i for i in selected if senses[i] is Sense.GE}
                if ge_orig:
                    flip_mask = np.asarray(
                        [r in ge_orig for r in sel_rows], dtype=bool
                    )
                    sel_vals[flip_mask] *= -1.0
                    for new_i, orig in enumerate(selected):
                        if orig in ge_orig:
                            b[new_i] *= -1.0
            mat = sparse.coo_matrix(
                (sel_vals, (new_rows, sel_cols)), shape=(len(selected), nvar)
            ).tocsr()
            return mat, b

        a_ub, b_ub = build(ub_row_ids, flip_ge=True)
        a_eq, b_eq = build(eq_row_ids, flip_ge=False)
        return c, a_ub, b_ub, a_eq, b_eq, lb, ub

    def constraint_violation(self, x: np.ndarray, eps: float = 1e-7) -> float:
        """Maximum violation of any constraint/bound at point ``x``.

        Used by tests to cross-check solver outputs independently.
        """
        c, a_ub, b_ub, a_eq, b_eq, lb, ub = self.to_standard_arrays()
        worst = 0.0
        if a_ub is not None:
            worst = max(worst, float(np.max(a_ub @ x - b_ub, initial=0.0)))
        if a_eq is not None:
            worst = max(worst, float(np.max(np.abs(a_eq @ x - b_eq), initial=0.0)))
        worst = max(worst, float(np.max(lb - x, initial=0.0)))
        finite_ub = np.isfinite(ub)
        if finite_ub.any():
            worst = max(
                worst, float(np.max((x - ub)[finite_ub], initial=0.0))
            )
        return worst

    def objective_value(self, x: np.ndarray) -> float:
        return float(np.dot(np.asarray(self._obj, dtype=float), x))
