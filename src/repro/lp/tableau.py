"""The legacy dense full-tableau two-phase simplex, kept as a yardstick.

The production in-repo solver is the bounded-variable *revised* simplex in
:mod:`repro.lp.simplex`; this module preserves its predecessor — a textbook
full-tableau two-phase simplex with Bland's anti-cycling rule and per-pivot
``O(rows x cols)`` tableau updates — so benchmarks (``bench_lp_solver``)
can measure the revised solver against the exact algorithm it replaced, and
so a third independent implementation remains available for differential
testing.  Finite upper bounds are modeled the old way, as extra ``<=``
rows, which is precisely the blow-up the revised solver's native bound
flips remove.

Two historical defects are fixed rather than preserved:

* standard-form assembly is vectorized and sparse-aware (no
  ``todense()`` + per-row Python appends, no quadratic free-variable
  column copies) — the tableau itself is inherently dense, but it is now
  materialized once;
* artificial columns are genuinely retired after phase 1 — pivoted out of
  the basis, redundant rows dropped, and the columns *deleted* — instead
  of being priced at a magic ``1e18`` cost in phase 2, which could poison
  reduced-cost comparisons.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.errors import StageTimeoutError
from ..core.resilience import check_budget
from ..core.tolerance import EPS
from .model import LinearProgram, LPSolution, LPStatus
from .warmstart import Basis

__all__ = ["TableauBackend", "solve_tableau"]

_TOL = EPS
_PHASE1_TOL = 100 * EPS  # phase-1 objective accumulates m pivots of error
_MAX_ITERS_FACTOR = 200
_BUDGET_POLL_ITERS = 64  # pivot iterations between wall-clock checks


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """In-place pivot on ``tableau[row, col]``."""
    tableau[row] /= tableau[row, col]
    pivot_col = tableau[:, col].copy()
    pivot_col[row] = 0.0
    tableau -= np.outer(pivot_col, tableau[row])
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    cost: np.ndarray,
    max_iters: int,
    deadline: float | None = None,
    context: str = "",
) -> LPStatus:
    """Optimize ``min cost.x`` over the tableau in place; returns status.

    ``tableau`` is ``(m, n+1)`` with the rhs in the last column; ``basis``
    holds the basic column of each row.  Uses Bland's rule with the
    historical per-column/per-row Python loops (deliberately unchanged —
    this per-pivot cost is what ``bench_lp_solver`` measures).  Every
    ``_BUDGET_POLL_ITERS`` pivots the loop polls the ambient solve budget
    and the explicit ``deadline`` (monotonic seconds), raising
    :class:`StageTimeoutError` when either is exhausted.
    """
    m, _ = tableau.shape
    n = tableau.shape[1] - 1
    for iteration in range(max_iters):
        if iteration % _BUDGET_POLL_ITERS == 0:
            check_budget("lp", "tableau")
            if deadline is not None and time.monotonic() > deadline:
                raise StageTimeoutError(
                    f"simplex exceeded its time limit{context}",
                    stage="lp",
                    backend="tableau",
                )
        c_b = cost[basis]
        reduced = cost[:n] - c_b @ tableau[:, :n]
        entering = -1
        for j in range(n):  # Bland: smallest index with negative reduced cost
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return LPStatus.OPTIMAL
        col = tableau[:, entering]
        rhs = tableau[:, n]
        best_ratio = np.inf
        leaving = -1
        for i in range(m):
            if col[i] > _TOL:
                ratio = rhs[i] / col[i]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return LPStatus.UNBOUNDED
        _pivot(tableau, basis, leaving, entering)
    return LPStatus.ERROR  # iteration limit: numerical trouble


def solve_tableau(
    model: LinearProgram,
    *,
    time_limit: float | None = None,
    warm_basis: Basis | None = None,
) -> LPSolution:
    """Solve ``model`` with the legacy full-tableau two-phase simplex.

    ``time_limit`` (seconds, across both phases) raises
    :class:`StageTimeoutError` when exceeded; the ambient solve budget is
    honored either way.  ``warm_basis`` is accepted for backend interface
    parity but ignored: the full tableau carries no factorized basis to
    restore, so every solve is cold.
    """
    del warm_basis
    tic = time.perf_counter()
    deadline = time.monotonic() + time_limit if time_limit is not None else None
    context = f" on LP {model.name or '<unnamed>'} [{model.dims()}]"
    c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_standard_arrays()
    nvar = model.num_variables
    if nvar == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, x=np.empty(0))

    # ------------------------------------------------------------------
    # Variable transformation to x' >= 0 (vectorized, one dense copy).
    # x_i = lb_i + x'_i                        when lb_i finite
    # x_i = x'_pos - x'_neg                    when lb_i = -inf
    # ------------------------------------------------------------------
    free = ~np.isfinite(lb)
    free_idx = np.flatnonzero(free)
    shift = np.where(free, 0.0, lb)
    n_std = nvar + free_idx.size
    neg_col = np.full(nvar, -1, dtype=np.int64)
    neg_col[free_idx] = nvar + np.arange(free_idx.size)

    def expand(mat) -> tuple[np.ndarray, np.ndarray]:
        """Dense standard-form block: append negated free columns in bulk."""
        dense = mat.toarray()
        if free_idx.size:
            dense = np.hstack([dense, -dense[:, free_idx]])
        return dense

    a_blocks: list[np.ndarray] = []
    b_parts: list[np.ndarray] = []
    eq_parts: list[np.ndarray] = []
    if a_ub is not None and b_ub is not None:
        a_blocks.append(expand(a_ub))
        b_parts.append(b_ub - a_ub @ shift)
        eq_parts.append(np.zeros(b_ub.size, dtype=bool))
    if a_eq is not None and b_eq is not None:
        a_blocks.append(expand(a_eq))
        b_parts.append(b_eq - a_eq @ shift)
        eq_parts.append(np.ones(b_eq.size, dtype=bool))
    # Finite upper bounds become rows  x'_i (- x'_neg) <= ub_i - lb_i.
    fin = np.flatnonzero(np.isfinite(ub))
    if fin.size:
        ub_block = np.zeros((fin.size, n_std))
        ub_block[np.arange(fin.size), fin] = 1.0
        free_rows = np.flatnonzero(free[fin])
        if free_rows.size:
            ub_block[free_rows, neg_col[fin[free_rows]]] = -1.0
        a_blocks.append(ub_block)
        b_parts.append(ub[fin] - shift[fin])
        eq_parts.append(np.zeros(fin.size, dtype=bool))

    c_std = np.concatenate([c, -c[free_idx]])
    const_term = float(c @ shift)

    if not a_blocks:
        # Unconstrained except x' >= 0: optimum sets x'_j = 0 unless c_j < 0.
        if np.any(c_std < -_TOL):
            return LPSolution(status=LPStatus.UNBOUNDED, objective=None, x=None)
        return LPSolution(
            status=LPStatus.OPTIMAL,
            objective=const_term,
            x=shift.copy(),
            solve_ms=(time.perf_counter() - tic) * 1e3,
        )

    a = np.vstack(a_blocks)
    b = np.concatenate(b_parts)
    is_eq = np.concatenate(eq_parts)
    m = b.size

    # Normalize to b >= 0 (flipped LE rows become GE rows needing surplus).
    flipped = b < 0.0
    if flipped.any():
        a[flipped] *= -1.0
        b = np.abs(b)

    # Slack / surplus / artificial columns (vectorized scatter).
    ineq_rows = np.flatnonzero(~is_eq)
    n_slack = ineq_rows.size
    slack = np.zeros((m, n_slack))
    slack[ineq_rows, np.arange(n_slack)] = np.where(
        flipped[ineq_rows], -1.0, 1.0
    )
    slack_col_of_row = np.full(m, -1, dtype=np.int64)
    plain_le = ineq_rows[~flipped[ineq_rows]]
    slack_col_of_row[plain_le] = (
        n_std + np.searchsorted(ineq_rows, plain_le)
    )

    art_rows = np.flatnonzero(is_eq | flipped)
    art = np.zeros((m, art_rows.size))
    art[art_rows, np.arange(art_rows.size)] = 1.0
    art_start = n_std + n_slack
    art_cols = art_start + np.arange(art_rows.size)

    tableau = np.hstack([a, slack, art, b.reshape(-1, 1)])
    total_cols = art_start + art_rows.size

    basis = slack_col_of_row.copy()
    basis[art_rows] = art_cols
    max_iters = _MAX_ITERS_FACTOR * (m + total_cols)

    # Phase 1: minimize sum of artificials.
    if art_rows.size:
        cost1 = np.zeros(total_cols)
        cost1[art_cols] = 1.0
        status = _run_simplex(tableau, basis, cost1, max_iters, deadline, context)
        if status is LPStatus.ERROR:
            return LPSolution(
                status=LPStatus.ERROR, objective=None, x=None,
                message="phase-1 iteration limit",
            )
        phase1_val = float(cost1[basis] @ tableau[:, -1])
        if phase1_val > _PHASE1_TOL:
            return LPSolution(status=LPStatus.INFEASIBLE, objective=None, x=None)
        # Retire the artificials for real: pivot each one out of the basis
        # if any structural/slack column can take its row; a row where none
        # can is redundant and is dropped outright.  Afterwards the
        # artificial columns are deleted, so phase 2 never prices them.
        art_set = set(int(col) for col in art_cols)
        redundant: list[int] = []
        for i in range(m):
            if int(basis[i]) not in art_set:
                continue
            pivoted = False
            for j in range(art_start):
                if abs(tableau[i, j]) > _TOL:
                    _pivot(tableau, basis, i, j)
                    pivoted = True
                    break
            if not pivoted:
                redundant.append(i)
        if redundant:
            tableau = np.delete(tableau, redundant, axis=0)
            basis = np.delete(basis, redundant)
            m -= len(redundant)
        tableau = np.delete(tableau, art_cols, axis=1)
        total_cols = art_start

    # Phase 2: original objective over the artificial-free tableau.
    cost2 = np.zeros(total_cols)
    cost2[:n_std] = c_std
    status = _run_simplex(tableau, basis, cost2, max_iters, deadline, context)
    if status is LPStatus.UNBOUNDED:
        return LPSolution(status=LPStatus.UNBOUNDED, objective=None, x=None)
    if status is LPStatus.ERROR:
        return LPSolution(
            status=LPStatus.ERROR, objective=None, x=None,
            message="phase-2 iteration limit",
        )

    x_std = np.zeros(total_cols)
    x_std[basis] = tableau[:, -1]
    x = x_std[:nvar].copy()
    if free_idx.size:
        x[free_idx] -= x_std[neg_col[free_idx]]
    x += shift
    return LPSolution(
        status=LPStatus.OPTIMAL,
        objective=float(c @ x),
        x=x,
        solve_ms=(time.perf_counter() - tic) * 1e3,
    )


class TableauBackend:
    """Callable-object form of :func:`solve_tableau` for the backend registry."""

    name = "tableau"

    def __call__(
        self,
        model: LinearProgram,
        *,
        time_limit: float | None = None,
        warm_basis: Basis | None = None,
    ) -> LPSolution:
        check_budget("lp", "tableau")
        return solve_tableau(
            model, time_limit=time_limit, warm_basis=warm_basis
        )

    def __repr__(self) -> str:  # pragma: no cover
        return "TableauBackend()"
