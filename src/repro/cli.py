"""Command-line interface: generate, solve, validate, simulate, render.

Installed as the ``repro-ise`` console script::

    repro-ise generate --family mixed --n 20 --machines 2 --T 10 --seed 0 \
        --out instance.json
    repro-ise solve instance.json --out schedule.json
    repro-ise validate instance.json schedule.json
    repro-ise simulate instance.json schedule.json
    repro-ise render instance.json schedule.json
    repro-ise bounds instance.json
    repro-ise serve --port 8080 --workers 2

Every subcommand is a thin shell over the library API, so anything the CLI
does is equally scriptable from Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import (
    FAMILY_GENERATORS,
    SweepCase,
    combined_lower_bound,
    run_sweep_report,
    save_html_report,
    save_sweep_report,
    summarize_schedule,
    sweep_table,
)
from .core import validate_ise, validate_tise
from .core.solver import ISEConfig, solve_ise
from .instances import (
    clustered_instance,
    heavy_tail_instance,
    load_instance,
    load_schedule,
    long_window_instance,
    mixed_instance,
    partition_instance,
    rigid_instance,
    save_instance,
    save_schedule,
    short_window_instance,
    staircase_instance,
    unit_instance,
)
from .postopt import consolidate
from .sim import simulate
from .viz import render_schedule, render_windows

__all__ = ["main", "build_parser"]

_FAMILIES = {
    "long": long_window_instance,
    "short": short_window_instance,
    "mixed": mixed_instance,
    "unit": unit_instance,
    "clustered": clustered_instance,
    "rigid": rigid_instance,
    "staircase": staircase_instance,
    "heavy_tail": heavy_tail_instance,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-ise`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-ise",
        description="ISE calibration scheduling (Fineman & Sheridan, SPAA 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a feasible random instance")
    gen.add_argument("--family", choices=sorted(_FAMILIES) + ["partition"],
                     default="mixed")
    gen.add_argument("--n", type=int, default=20,
                     help="number of jobs (pairs for the partition family)")
    gen.add_argument("--machines", type=int, default=2)
    gen.add_argument("--T", type=float, default=10.0, help="calibration length")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="instance JSON output path")
    gen.add_argument("--witness-out", help="also save the witness schedule")

    solve = sub.add_parser("solve", help="solve an instance with the paper's algorithm")
    solve.add_argument("instance", help="instance JSON path")
    solve.add_argument("--out", help="schedule JSON output path")
    solve.add_argument("--mm", default="best_greedy",
                       help="MM black box name (see repro.mm.MM_ALGORITHMS)")
    solve.add_argument("--lp-backend", default="highs",
                       choices=["highs", "simplex", "tableau"])
    solve.add_argument("--window-factor", type=float, default=2.0,
                       help="Definition 1 long/short threshold factor")
    solve.add_argument("--no-prune", action="store_true",
                       help="keep empty calibrations (theorem-bound counts)")
    solve.add_argument("--overlapping", action="store_true",
                       help="footnote-3 variant: calibrations may overlap")
    solve.add_argument("--consolidate", action="store_true",
                       help="run the local-search post-optimizer")
    solve.add_argument("--specialize-unit", action="store_true",
                       help="use lazy binning on unit-processing instances")
    solve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget for the whole solve")
    solve.add_argument("--no-strict", action="store_true",
                       help="degrade through backend fallback chains instead "
                            "of failing; the result is flagged 'degraded'")
    solve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="fan independent sub-solves out over N workers "
                            "(output is identical to the serial run)")
    solve.add_argument("--verify", action="store_true",
                       help="certify the result before returning it: an "
                            "independent re-validation pass issues a "
                            "checksummed certificate; a failed certificate "
                            "quarantines the result (exit code 6)")

    val = sub.add_parser("validate", help="independently validate a schedule")
    val.add_argument("instance")
    val.add_argument("schedule")
    val.add_argument("--tise", action="store_true",
                     help="also enforce the TISE restriction")
    val.add_argument("--allow-overlap", action="store_true")

    simcmd = sub.add_parser("simulate", help="execute a schedule event by event")
    simcmd.add_argument("instance")
    simcmd.add_argument("schedule")
    simcmd.add_argument("--allow-overlap", action="store_true")

    render = sub.add_parser("render", help="ASCII-render an instance / schedule")
    render.add_argument("instance")
    render.add_argument("schedule", nargs="?")
    render.add_argument("--width", type=int, default=96)

    bounds = sub.add_parser("bounds", help="print certified lower bounds")
    bounds.add_argument("instance")

    sweep = sub.add_parser(
        "sweep", help="solve a family across seeds and tabulate quality"
    )
    sweep.add_argument("--family", choices=sorted(FAMILY_GENERATORS),
                       default="mixed")
    sweep.add_argument("--n", type=int, default=20)
    sweep.add_argument("--machines", type=int, default=2)
    sweep.add_argument("--T", type=float, default=10.0)
    sweep.add_argument("--seeds", type=int, default=5,
                       help="number of seeds (0..seeds-1)")
    sweep.add_argument("--no-postopt", action="store_true")
    sweep.add_argument("--preset", choices=["smoke", "standard", "large"],
                       help="run a named suite instead of a single family")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="solve independent cases over N workers "
                            "(outcomes are identical to the serial run)")
    sweep.add_argument("--checkpoint-dir", metavar="DIR",
                       help="journal each case as it completes so a crashed "
                            "sweep can --resume instead of starting over")
    sweep.add_argument("--resume", action="store_true",
                       help="replay an existing checkpoint journal, skipping "
                            "its completed cases (requires --checkpoint-dir)")
    sweep.add_argument("--max-shard-retries", type=int, default=2, metavar="K",
                       help="retries for a case whose worker process died "
                            "before it is quarantined as failed")
    sweep.add_argument("--out", metavar="PATH",
                       help="also write the sweep report artifact "
                            "(atomic, checksummed JSON)")

    rep = sub.add_parser(
        "report", help="solve and write a self-contained HTML report"
    )
    rep.add_argument("instance")
    rep.add_argument("--out", required=True, help="HTML output path")
    rep.add_argument("--mm", default="best_greedy")
    rep.add_argument("--title", default="ISE solve report")

    frontier = sub.add_parser(
        "frontier",
        help="print the machines-vs-speed feasibility frontier",
    )
    frontier.add_argument("instance")
    frontier.add_argument("--max-machines", type=int, default=None)
    frontier.add_argument("--method", choices=["exact", "greedy"],
                          default="exact")

    fuzz = sub.add_parser(
        "fuzz",
        help="falsification harness: random instances vs every invariant",
    )
    fuzz.add_argument("--cases", type=int, default=25)
    fuzz.add_argument("--n", type=int, default=14)
    fuzz.add_argument("--machines", type=int, default=2)
    fuzz.add_argument("--T", type=float, default=10.0)
    fuzz.add_argument("--start-seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the supervised solve service over HTTP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="solver worker threads")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="admission queue bound; beyond it requests are "
                            "rejected with HTTP 429")
    serve.add_argument("--default-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="deadline for requests that name none")
    serve.add_argument("--max-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="cap on client-requested deadlines")
    serve.add_argument("--drain-deadline", type=float, default=10.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, wait this long for queued "
                            "and in-flight solves before abandoning them")
    serve.add_argument("--mm", default="best_greedy",
                       help="MM black box for the short-window side")
    serve.add_argument("--lp-backend", default="highs",
                       choices=["highs", "simplex", "tableau"])
    serve.add_argument("--strict", action="store_true",
                       help="propagate solve failures instead of degrading "
                            "through fallback chains")
    serve.add_argument("--verify", action="store_true",
                       help="certify every result before returning it; a "
                            "failed certificate triggers one cold re-solve "
                            "and, failing that, a typed quarantine error")
    serve.add_argument("--session-dir", default=None, metavar="DIR",
                       help="enable the /sessions routes, with per-session "
                            "durable journals under DIR; restarting the "
                            "server against the same DIR recovers every "
                            "session and fences out stale writers")
    serve.add_argument("--session-ttl", type=float, default=600.0,
                       metavar="SECONDS",
                       help="evict sessions idle this long from memory "
                            "(journals persist; they recover lazily)")

    session = sub.add_parser(
        "session",
        help="drive a durable online session (streaming arrivals) locally",
    )
    session.add_argument("dir", help="directory holding session journals")
    session.add_argument("id", help="session id")
    saction = session.add_subparsers(dest="action", required=True)
    screate = saction.add_parser("create", help="start a fresh session")
    screate.add_argument("--machines", type=int, required=True)
    screate.add_argument("--T", type=float, required=True,
                         help="calibration length")
    screate.add_argument("--horizon", type=float, default=0.0,
                         help="commit horizon: calibrations starting within "
                              "now+horizon become immutable")
    ssubmit = saction.add_parser("submit", help="stream one job in")
    ssubmit.add_argument("--job", type=int, required=True, help="client job id")
    ssubmit.add_argument("--release", type=float, required=True)
    ssubmit.add_argument("--deadline", type=float, required=True)
    ssubmit.add_argument("--processing", type=float, required=True)
    ssubmit.add_argument("--at", type=float, default=None,
                         help="arrival time (default: the session clock)")
    sadvance = saction.add_parser("advance", help="move the session clock")
    sadvance.add_argument("--to", type=float, required=True)
    saction.add_parser("show", help="print the session's current state")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "partition":
        generated = partition_instance(args.n, args.seed)
    elif args.family == "unit":
        generated = unit_instance(args.n, args.machines, int(args.T), args.seed)
    else:
        generated = _FAMILIES[args.family](
            args.n, args.machines, args.T, args.seed
        )
    save_instance(generated.instance, args.out)
    print(
        f"wrote {args.out}: {generated.instance.n} jobs, "
        f"m={generated.instance.machines}, "
        f"T={generated.instance.calibration_length:g}, "
        f"witness uses {generated.witness_calibrations} calibrations"
    )
    if args.witness_out:
        save_schedule(generated.witness, args.witness_out)
        print(f"wrote witness schedule to {args.witness_out}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    config = ISEConfig(
        mm_algorithm=args.mm,
        lp_backend=args.lp_backend,
        window_factor=args.window_factor,
        prune_empty=not args.no_prune,
        overlapping_calibrations=args.overlapping,
        specialize_unit=args.specialize_unit,
        strict=not args.no_strict,
        timeout=args.timeout,
        max_workers=args.workers,
        verify=args.verify,
    )
    result = solve_ise(instance, config)
    schedule = result.schedule
    if result.degraded:
        print("DEGRADED     : " + "; ".join(result.resilience.fallbacks))
        print(f"resilience   : {result.resilience.summary()}")
    if result.certificate is not None:
        print(f"certificate  : {result.certificate.describe()}")
        print(f"checksum     : {result.certificate.checksum}")
    if args.consolidate:
        improved = consolidate(instance, schedule)
        schedule = improved.schedule
        print(
            f"consolidation removed {improved.removed_calibrations} of "
            f"{improved.initial_calibrations} calibrations"
        )
    metrics = summarize_schedule(instance, schedule)
    print(f"calibrations : {schedule.num_calibrations}")
    print(f"machines     : {metrics.machines_used}")
    print(f"lower bound  : {result.lower_bound.best:.3f}")
    lb = result.lower_bound.best
    if lb > 0:
        print(f"ratio        : {schedule.num_calibrations / lb:.3f}")
    print(f"utilization  : {metrics.utilization:.1%}")
    print(
        f"split        : {result.partition.n_long} long / "
        f"{result.partition.n_short} short"
    )
    if args.out:
        # A certificate attests to the exact schedule it was issued for;
        # consolidation rewrites the schedule, so the certificate stays
        # attached only when the saved schedule is the certified one.
        certificate = None if args.consolidate else result.certificate
        save_schedule(schedule, args.out, certificate=certificate)
        print(f"wrote schedule to {args.out}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    schedule = load_schedule(args.schedule)
    if args.tise:
        report = validate_tise(instance, schedule)
    else:
        report = validate_ise(
            instance,
            schedule,
            allow_overlapping_calibrations=args.allow_overlap,
        )
    print(report.summary())
    for violation in report.violations[:20]:
        print(f"  {violation}")
    if len(report.violations) > 20:
        print(f"  ... and {len(report.violations) - 20} more")
    return 0 if report.ok else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    schedule = load_schedule(args.schedule)
    result = simulate(instance, schedule, allow_overlap=args.allow_overlap)
    status = "ok" if result.ok else f"{len(result.violations)} violations"
    print(f"simulation   : {status}")
    print(f"completed    : {len(result.completed_jobs)}/{instance.n} jobs")
    print(f"makespan     : {result.makespan:g}")
    print(f"busy time    : {result.total_busy_time:g}")
    print(f"calibrated   : {result.total_calibrated_time:g}")
    print(f"utilization  : {result.utilization:.1%}")
    for violation in result.violations[:20]:
        print(f"  {violation}")
    return 0 if result.ok else 1


def _cmd_render(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(render_windows(instance.jobs, width=args.width))
    if args.schedule:
        schedule = load_schedule(args.schedule)
        print()
        print(render_schedule(instance, schedule, width=args.width))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    breakdown = combined_lower_bound(instance)
    print(f"work bound        : {breakdown.work}")
    print(f"long-window LP/3  : {breakdown.long_lp:.3f}")
    print(f"short interval/2  : {breakdown.short_interval:.3f}")
    print(f"best lower bound  : {breakdown.best:.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.preset:
        from .instances import preset_cases

        cases = preset_cases(args.preset)
        title = f"sweep preset: {args.preset} ({len(cases)} cases)"
    else:
        cases = [
            SweepCase(
                family=args.family,
                n=args.n,
                machines=args.machines,
                calibration_length=args.T,
                seed=seed,
            )
            for seed in range(args.seeds)
        ]
        title = f"sweep: {args.family} n={args.n} m={args.machines} T={args.T:g}"
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    report = run_sweep_report(
        cases,
        postopt=not args.no_postopt,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        max_shard_retries=args.max_shard_retries,
    )
    table = sweep_table(report.outcomes, title=title)
    table.print()
    if args.checkpoint_dir:
        print(
            f"checkpoint   : {report.journal_path} "
            f"({report.restored} restored, {report.solved} solved)"
        )
    for record in report.failed:
        error = record.get("error", {})
        print(
            f"QUARANTINED  : {record.get('key')} after "
            f"{record.get('attempts')} attempt(s): "
            f"{error.get('type')}: {error.get('message')}"
        )
    for key in report.pending:
        print(f"PENDING      : {key} (budget expired; --resume re-solves it)")
    if report.resilience.notes:
        print("notes        : " + "; ".join(report.resilience.notes))
    if args.out:
        save_sweep_report(report, args.out)
        print(f"wrote sweep report to {args.out}")
    if not report.ok:
        return 1
    return 0 if all(o.valid for o in report.outcomes) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    result = solve_ise(instance, ISEConfig(mm_algorithm=args.mm))
    run = simulate(instance, result.schedule)
    path = save_html_report(
        instance, result, args.out, simulation=run, title=args.title
    )
    print(f"wrote HTML report to {path}")
    return 0 if run.ok else 1


def _cmd_frontier(args: argparse.Namespace) -> int:
    from .analysis import augmentation_frontier, frontier_table

    instance = load_instance(args.instance)
    points = augmentation_frontier(
        instance, max_machines=args.max_machines, method=args.method
    )
    frontier_table(
        points, title=f"augmentation frontier: {instance.name or args.instance}"
    ).print()
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Search random instances for any invariant violation.

    For every (family, seed) pair: solve, run the full audit (static
    validator + event simulator + executable theorem bounds via
    ``repro.theory.audit_run``), then the post-optimizer (which must stay
    feasible and never-worse).  Prints one line per failure; exit code 1 if
    anything falsified.
    """
    from .postopt import consolidate
    from .theory import audit_run

    failures: list[str] = []
    checked = 0
    for family, generator in sorted(_FAMILIES.items()):
        for k in range(args.cases):
            seed = args.start_seed + k
            T = int(args.T) if family == "unit" else args.T
            generated = generator(args.n, args.machines, T, seed)
            instance = generated.instance
            label = f"{family}/seed={seed}"
            checked += 1
            try:
                result = solve_ise(instance)
            except Exception as exc:  # noqa: BLE001 - fuzzing surface
                failures.append(f"{label}: solver raised {exc!r}")
                continue
            audit = audit_run(instance, result)
            if not audit.ok:
                failures.append(f"{label}: {audit.summary()}")
            improved = consolidate(instance, result.schedule)
            if improved.final_calibrations > result.num_calibrations:
                failures.append(f"{label}: post-optimizer made things worse")
            if not validate_ise(instance, improved.schedule).ok:
                failures.append(f"{label}: post-optimized schedule infeasible")
    print(f"fuzz: {checked} cases across {len(_FAMILIES)} families")
    for failure in failures:
        print(f"  FALSIFIED {failure}")
    print("result: " + ("ALL INVARIANTS HELD" if not failures else f"{len(failures)} failures"))
    return 0 if not failures else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP solve service until SIGTERM/SIGINT, then drain.

    The signal handler only asks the HTTP loop to stop; the actual drain —
    close admission, finish queued + in-flight solves within the drain
    deadline, abandon the rest with typed errors — happens on the main
    thread afterwards.  Exit code 5 reports an unclean drain (work was
    abandoned), so process supervisors can tell "stopped politely" from
    "stopped on time but dropped requests".
    """
    import signal
    import threading

    from .serve import ServiceConfig, SolveService, make_server

    solver = ISEConfig(
        mm_algorithm=args.mm,
        lp_backend=args.lp_backend,
        strict=args.strict,
    )
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        drain_deadline=args.drain_deadline,
        solver=solver,
        verify_results=args.verify,
    )
    service = SolveService(config)
    sessions = None
    if args.session_dir is not None:
        from .serve import SessionManager

        sessions = SessionManager(
            args.session_dir, config=solver, ttl=args.session_ttl
        )
    server = make_server(service, host=args.host, port=args.port,
                         sessions=sessions)

    def _on_signal(signum: int, frame: object) -> None:
        # serve_forever() must be stopped from another thread; shutdown()
        # called from this handler (which runs on the serving thread's
        # interpreter loop) would deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(
        f"repro-ise serve: http://{args.host}:{server.port} "
        f"({config.workers} workers, queue {config.queue_capacity}, "
        f"default deadline {config.default_deadline}s)",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("repro-ise serve: draining ...", flush=True)
    report = service.shutdown(args.drain_deadline)
    server.server_close()
    if sessions is not None:
        persisted = sessions.drain()
        print(f"repro-ise serve: persisted {persisted} session(s)", flush=True)
    abandoned = report.abandoned_queued + report.abandoned_in_flight
    print(
        f"repro-ise serve: drained {report.drained} request(s), "
        f"abandoned {abandoned} in {report.duration:.2f}s "
        f"({'clean' if report.clean else 'UNCLEAN'})",
        flush=True,
    )
    return 0 if report.clean else 5


def _cmd_session(args: argparse.Namespace) -> int:
    """Drive a durable online session from the shell, one action at a time.

    Every invocation reopens the journal (bumping the fencing epoch) and
    prints a JSON document, so shell pipelines can chain ``create`` /
    ``submit`` / ``advance`` / ``show`` across process restarts — each
    restart is itself a recovery exercise of the journal.
    """
    import json

    from .online import ISESession

    if args.action == "create":
        session = ISESession.create(
            args.dir,
            args.id,
            machines=args.machines,
            calibration_length=args.T,
            commit_horizon=args.horizon,
        )
    else:
        session = ISESession.open(args.dir, args.id)

    payload: dict[str, object]
    if args.action == "submit":
        receipt = session.submit_job(
            args.job,
            release=args.release,
            deadline=args.deadline,
            processing=args.processing,
            at=args.at,
        )
        payload = {
            "action": "submit",
            "job_id": receipt.job_id,
            "replayed": receipt.replayed,
            "repaired": receipt.repaired,
            "start": receipt.start,
            "machine": receipt.machine,
            "locked": receipt.locked,
            "newly_committed": [list(key) for key in receipt.newly_committed],
        }
    elif args.action == "advance":
        outcome = session.advance(args.to)
        payload = {
            "action": "advance",
            "now": outcome.now,
            "newly_committed": [list(key) for key in outcome.newly_committed],
        }
    else:  # create / show share the snapshot shape
        payload = {"action": args.action}
    payload.update(
        session_id=session.session_id,
        fence=session.fence,
        now=session.now,
        job_count=session.job_count,
        committed=[
            [cal.start, cal.machine] for cal in session.committed_calibrations
        ],
        replans=session.replans,
        repairs=session.repairs,
        digest=session.state_digest(),
    )
    if args.action == "show":
        payload["schedule"] = [
            {
                "job": placement.job_id,
                "start": placement.start,
                "machine": placement.machine,
            }
            for placement in session.schedule.placements
        ]
    session.close()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


_DISPATCH = {
    "generate": _cmd_generate,
    "solve": _cmd_solve,
    "validate": _cmd_validate,
    "simulate": _cmd_simulate,
    "render": _cmd_render,
    "bounds": _cmd_bounds,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "frontier": _cmd_frontier,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "session": _cmd_session,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 1 check failed (invalid/infeasible/falsified),
    2 usage or input error (missing file, malformed JSON, bad instance),
    3 solve budget exceeded (``--timeout``), 4 solver/backend failure,
    5 unclean service drain (``serve`` abandoned requests at shutdown),
    6 result quarantined (``--verify`` certification failed).
    Codes 3, 4, and 6 are retryable from an operator's point of view
    (more time, another backend, another replica); code 2 is not.
    """
    from .core.errors import (
        CertificationError,
        LimitExceededError,
        ReproError,
        SolverError,
    )

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _DISPATCH[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: file not found: {exc.filename or exc}", file=sys.stderr)
        return 2
    except CertificationError as exc:
        print(f"error: result quarantined: {exc}", file=sys.stderr)
        if exc.certificate is not None:
            print(f"  {exc.certificate.describe()}", file=sys.stderr)
        return 6
    except LimitExceededError as exc:
        print(f"error: budget exceeded: {exc}", file=sys.stderr)
        return 3
    except SolverError as exc:
        print(f"error: solver failure: {exc}", file=sys.stderr)
        return 4
    except (ReproError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
