"""Tests for the ASCII renderers (structure, not pixel-perfection)."""

from __future__ import annotations

from repro.instances import (
    figure1_instance,
    figure2_fractional_calibrations,
    long_window_instance,
)
from repro.longwindow import rounded_start_times
from repro.viz import (
    render_fractional_calibrations,
    render_schedule,
    render_windows,
)


class TestRenderWindows:
    def test_one_line_per_job(self):
        instance, _ = figure1_instance()
        art = render_windows(instance.jobs)
        lines = art.splitlines()
        assert len(lines) == 1 + len(instance.jobs)
        for job in instance.jobs:
            assert any(f"job {job.job_id:>3}" in line for line in lines)

    def test_empty(self):
        assert render_windows(()) == "(no jobs)"


class TestRenderSchedule:
    def test_one_line_per_machine(self):
        instance, schedule = figure1_instance()
        art = render_schedule(instance, schedule)
        lines = art.splitlines()
        assert len(lines) == 1 + schedule.num_machines
        assert "[" in art and "=" in art

    def test_jobs_visible(self):
        gen = long_window_instance(n=5, machines=1, calibration_length=10.0, seed=0)
        art = render_schedule(gen.instance, gen.witness)
        # Every job glyph (ids 0-4) appears somewhere.
        for jid in range(5):
            assert str(jid) in art

    def test_empty_schedule(self):
        from repro.core import Instance
        from repro.core.schedule import empty_schedule

        inst = Instance(jobs=(), machines=1, calibration_length=10.0)
        art = render_schedule(inst, empty_schedule(10.0))
        assert art == "(empty schedule)"


class TestRenderFractional:
    def test_bars_and_emissions(self):
        masses = figure2_fractional_calibrations()
        emitted = rounded_start_times(masses)
        art = render_fractional_calibrations(masses, emitted)
        assert "C=0.30" in art
        assert "C=0.80" in art
        assert "**" in art  # the double emission at the last point
        assert "#" in art

    def test_empty(self):
        assert "no fractional" in render_fractional_calibrations({})
