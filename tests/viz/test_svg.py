"""Tests for the SVG schedule exporter."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro import solve_ise
from repro.core import Instance
from repro.core.schedule import empty_schedule
from repro.instances import mixed_instance
from repro.viz import save_schedule_svg, schedule_to_svg


@pytest.fixture
def solved():
    gen = mixed_instance(10, 2, 10.0, seed=4)
    return gen.instance, solve_ise(gen.instance).schedule


class TestSvgStructure:
    def test_is_well_formed_xml(self, solved):
        instance, schedule = solved
        svg = schedule_to_svg(instance, schedule)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_calibration_and_job(self, solved):
        instance, schedule = solved
        svg = schedule_to_svg(instance, schedule, include_windows=False)
        root = ET.fromstring(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) == schedule.num_calibrations + len(schedule.placements)

    def test_window_panel_optional(self, solved):
        instance, schedule = solved
        with_windows = schedule_to_svg(instance, schedule, include_windows=True)
        without = schedule_to_svg(instance, schedule, include_windows=False)
        assert "job windows" in with_windows
        assert "job windows" not in without

    def test_tooltips_carry_job_info(self, solved):
        instance, schedule = solved
        svg = schedule_to_svg(instance, schedule)
        for job in instance.jobs:
            assert f"job {job.job_id}:" in svg

    def test_empty_schedule(self):
        inst = Instance(jobs=(), machines=1, calibration_length=10.0)
        svg = schedule_to_svg(inst, empty_schedule(10.0))
        assert "empty schedule" in svg
        ET.fromstring(svg)

    def test_save(self, solved, tmp_path):
        instance, schedule = solved
        path = save_schedule_svg(instance, schedule, tmp_path / "out.svg")
        assert path.exists()
        ET.fromstring(path.read_text())
