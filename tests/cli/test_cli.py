"""Tests for the repro-ise command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.instances import load_instance, load_schedule


@pytest.fixture
def instance_path(tmp_path):
    path = tmp_path / "instance.json"
    code = main([
        "generate", "--family", "mixed", "--n", "12", "--machines", "2",
        "--T", "10", "--seed", "3", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_instance(self, instance_path):
        inst = load_instance(instance_path)
        assert inst.n == 12
        assert inst.machines == 2

    def test_witness_output(self, tmp_path):
        inst_path = tmp_path / "i.json"
        wit_path = tmp_path / "w.json"
        code = main([
            "generate", "--family", "long", "--n", "8", "--machines", "1",
            "--T", "10", "--seed", "0", "--out", str(inst_path),
            "--witness-out", str(wit_path),
        ])
        assert code == 0
        from repro.core import validate_ise

        inst = load_instance(inst_path)
        wit = load_schedule(wit_path)
        assert validate_ise(inst, wit).ok

    @pytest.mark.parametrize("family", ["long", "short", "unit", "clustered", "partition"])
    def test_all_families(self, tmp_path, family):
        path = tmp_path / f"{family}.json"
        code = main([
            "generate", "--family", family, "--n", "8", "--machines", "2",
            "--T", "4", "--seed", "1", "--out", str(path),
        ])
        assert code == 0
        assert load_instance(path).n > 0


class TestSolveValidateSimulate:
    def test_full_workflow(self, instance_path, tmp_path, capsys):
        sched_path = tmp_path / "sched.json"
        code = main(["solve", str(instance_path), "--out", str(sched_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrations" in out and "lower bound" in out

        assert main(["validate", str(instance_path), str(sched_path)]) == 0
        assert main(["simulate", str(instance_path), str(sched_path)]) == 0

    def test_solve_with_consolidation(self, instance_path, tmp_path, capsys):
        sched_path = tmp_path / "sched.json"
        code = main([
            "solve", str(instance_path), "--out", str(sched_path),
            "--consolidate",
        ])
        assert code == 0
        assert "consolidation removed" in capsys.readouterr().out

    def test_solve_overlapping_variant(self, instance_path, tmp_path):
        sched_path = tmp_path / "s.json"
        assert main([
            "solve", str(instance_path), "--out", str(sched_path),
            "--overlapping",
        ]) == 0
        # Overlaps allowed: plain validate may fail, overlap-aware must pass.
        assert main([
            "validate", str(instance_path), str(sched_path), "--allow-overlap",
        ]) == 0

    def test_validate_catches_corruption(self, instance_path, tmp_path, capsys):
        sched_path = tmp_path / "sched.json"
        main(["solve", str(instance_path), "--out", str(sched_path)])
        # Unwrap the checksummed envelope and corrupt the *semantic* payload,
        # rewriting as legacy plain JSON: the checksum layer must not mask
        # the validator's own corruption detection.
        payload = json.loads(sched_path.read_text())["payload"]
        del payload["placements"][0]
        sched_path.write_text(json.dumps(payload))
        code = main(["validate", str(instance_path), str(sched_path)])
        assert code == 1
        assert "missing_job" in capsys.readouterr().out

    def test_simulate_catches_corruption(self, instance_path, tmp_path):
        sched_path = tmp_path / "sched.json"
        main(["solve", str(instance_path), "--out", str(sched_path)])
        payload = json.loads(sched_path.read_text())["payload"]
        payload["placements"][0]["start"] -= 1000.0
        sched_path.write_text(json.dumps(payload))
        assert main(["simulate", str(instance_path), str(sched_path)]) == 1


class TestRenderAndBounds:
    def test_render(self, instance_path, tmp_path, capsys):
        sched_path = tmp_path / "sched.json"
        main(["solve", str(instance_path), "--out", str(sched_path)])
        capsys.readouterr()
        assert main(["render", str(instance_path), str(sched_path)]) == 0
        out = capsys.readouterr().out
        assert "job" in out and "m0" in out

    def test_bounds(self, instance_path, capsys):
        assert main(["bounds", str(instance_path)]) == 0
        out = capsys.readouterr().out
        assert "best lower bound" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "generate", "--family", "bogus", "--out", str(tmp_path / "x"),
            ])


class TestFrontier:
    def test_frontier_on_partition_gadget(self, tmp_path, capsys):
        inst_path = tmp_path / "p.json"
        assert main([
            "generate", "--family", "partition", "--n", "4", "--seed", "1",
            "--out", str(inst_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "frontier", str(inst_path), "--max-machines", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "augmentation frontier" in out
        assert "machines" in out


class TestVerify:
    def test_solve_verify_prints_and_saves_certificate(
        self, instance_path, tmp_path, capsys
    ):
        from repro.instances import load_schedule_certificate

        sched_path = tmp_path / "sched.json"
        code = main([
            "solve", str(instance_path), "--verify", "--out", str(sched_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "certificate" in out and "VALID" in out
        assert "checksum" in out
        certificate = load_schedule_certificate(sched_path)
        assert certificate is not None and certificate.ok
        assert certificate.checksum in out

    def test_consolidated_schedule_drops_the_certificate(
        self, instance_path, tmp_path
    ):
        from repro.instances import load_schedule_certificate

        sched_path = tmp_path / "sched.json"
        code = main([
            "solve", str(instance_path), "--verify", "--consolidate",
            "--out", str(sched_path),
        ])
        assert code == 0
        # Consolidation rewrites the schedule the certificate attested to.
        assert load_schedule_certificate(sched_path) is None

    def test_quarantine_exits_6_with_verdict(
        self, instance_path, tmp_path, capsys
    ):
        from repro.testing import FaultPlan, inject_ise_corruption

        sched_path = tmp_path / "sched.json"
        with inject_ise_corruption(FaultPlan("garbage")):
            code = main([
                "solve", str(instance_path), "--verify",
                "--out", str(sched_path),
            ])
        assert code == 6
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "INVALID" in err
        assert not sched_path.exists()  # nothing invalid was persisted

    def test_without_verify_no_certificate_is_saved(
        self, instance_path, tmp_path
    ):
        from repro.instances import load_schedule_certificate

        sched_path = tmp_path / "sched.json"
        assert main([
            "solve", str(instance_path), "--out", str(sched_path),
        ]) == 0
        assert load_schedule_certificate(sched_path) is None
