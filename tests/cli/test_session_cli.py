"""The ``repro-ise session`` subcommand: shell-driven durable sessions."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main


def _run(capsys, *argv: str) -> dict:
    code = main(["session", *argv])
    assert code == 0
    return json.loads(capsys.readouterr().out)


def test_session_lifecycle_from_the_shell(tmp_path: Path, capsys) -> None:
    directory = str(tmp_path)
    created = _run(
        capsys, directory, "s1", "create",
        "--machines", "2", "--T", "6", "--horizon", "1.0",
    )
    assert created["session_id"] == "s1"
    assert created["fence"] == 1

    submitted = _run(
        capsys, directory, "s1", "submit",
        "--job", "1", "--release", "0", "--deadline", "12",
        "--processing", "4",
    )
    assert submitted["job_id"] == 1
    assert not submitted["replayed"]
    assert submitted["committed"]  # horizon 1.0 commits the first cal
    assert submitted["fence"] == 2  # every invocation reopens = re-fences

    advanced = _run(capsys, directory, "s1", "advance", "--to", "5")
    assert advanced["now"] == 5.0

    shown = _run(capsys, directory, "s1", "show")
    assert shown["job_count"] == 1
    assert shown["schedule"] and shown["schedule"][0]["job"] == 1
    # the digest is stable across pure reads (fence is excluded from it)
    assert shown["digest"] == advanced["digest"]


def test_duplicate_submit_across_processes_is_noop(
    tmp_path: Path, capsys
) -> None:
    directory = str(tmp_path)
    _run(capsys, directory, "s", "create", "--machines", "1", "--T", "5")
    first = _run(
        capsys, directory, "s", "submit",
        "--job", "7", "--release", "0", "--deadline", "10",
        "--processing", "2",
    )
    again = _run(
        capsys, directory, "s", "submit",
        "--job", "7", "--release", "0", "--deadline", "10",
        "--processing", "2",
    )
    assert again["replayed"]
    assert again["digest"] == first["digest"]


def test_conflicting_resubmit_exits_2(tmp_path: Path, capsys) -> None:
    directory = str(tmp_path)
    _run(capsys, directory, "s", "create", "--machines", "1", "--T", "5")
    _run(
        capsys, directory, "s", "submit",
        "--job", "7", "--release", "0", "--deadline", "10",
        "--processing", "2",
    )
    code = main([
        "session", directory, "s", "submit",
        "--job", "7", "--release", "0", "--deadline", "10",
        "--processing", "3",
    ])
    assert code == 2


def test_open_of_missing_session_exits_2(tmp_path: Path) -> None:
    assert main(["session", str(tmp_path), "ghost", "show"]) == 2
