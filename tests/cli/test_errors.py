"""Tests for CLI error handling (exit code 2 on input errors)."""

from __future__ import annotations

import json

from repro.cli import main


class TestInputErrors:
    def test_missing_instance_file(self, capsys, tmp_path):
        code = main(["solve", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_json(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        code = main(["bounds", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_payload_kind(self, capsys, tmp_path):
        path = tmp_path / "kind.json"
        path.write_text(json.dumps({"kind": "something", "version": 1}))
        code = main(["render", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_instance_payload(self, capsys, tmp_path):
        # p_j > T: rejected at Instance construction.
        path = tmp_path / "invalid.json"
        path.write_text(json.dumps({
            "kind": "ise-instance",
            "version": 1,
            "name": "x",
            "machines": 1,
            "calibration_length": 2.0,
            "jobs": [{"id": 0, "release": 0.0, "deadline": 20.0, "processing": 5.0}],
        }))
        code = main(["solve", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "exceeds" in err or "error" in err

    def test_schedule_file_missing(self, capsys, tmp_path):
        inst = tmp_path / "i.json"
        main([
            "generate", "--family", "mixed", "--n", "5", "--machines", "1",
            "--T", "10", "--seed", "0", "--out", str(inst),
        ])
        code = main(["validate", str(inst), str(tmp_path / "missing.json")])
        assert code == 2
