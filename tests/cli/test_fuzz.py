"""Tests for the fuzz (falsification) subcommand."""

from __future__ import annotations

from repro.cli import main


class TestFuzz:
    def test_small_run_clean(self, capsys):
        code = main([
            "fuzz", "--cases", "2", "--n", "8", "--machines", "2", "--T", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ALL INVARIANTS HELD" in out
        assert "16 cases" in out  # 2 seeds x 8 families

    def test_start_seed_shifts_coverage(self, capsys):
        code = main([
            "fuzz", "--cases", "1", "--n", "6", "--start-seed", "100",
        ])
        assert code == 0
        assert "8 cases" in capsys.readouterr().out
