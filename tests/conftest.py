"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, settings

from repro.core import Instance, Job

# Keep hypothesis deterministic and CI-friendly.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
def job_strategy(
    min_release: float = 0.0,
    max_release: float = 50.0,
    calibration_length: float = 10.0,
    long_window: bool | None = None,
):
    """Strategy producing a single valid Job.

    ``long_window=True`` forces ``window >= 2T``; False forces ``< 2T``;
    None leaves it free.
    """
    T = calibration_length

    @st.composite
    def build(draw, idx=0):
        release = draw(
            st.floats(
                min_release, max_release, allow_nan=False, allow_infinity=False
            )
        )
        processing = draw(st.floats(0.05 * T, T, exclude_min=False))
        if long_window is True:
            window = draw(st.floats(2.0 * T, 6.0 * T))
        elif long_window is False:
            window = draw(
                st.floats(min(processing, 1.9 * T), 1.95 * T).filter(
                    lambda w: w >= processing
                )
            )
        else:
            window = draw(st.floats(processing, 6.0 * T))
        return Job(
            job_id=idx,
            release=release,
            deadline=release + window,
            processing=min(processing, T),
        )

    return build()


@st.composite
def jobs_strategy(
    draw,
    min_jobs: int = 1,
    max_jobs: int = 8,
    calibration_length: float = 10.0,
    long_window: bool | None = None,
):
    """Strategy producing a tuple of valid jobs with unique sequential ids."""
    n = draw(st.integers(min_jobs, max_jobs))
    jobs = []
    for i in range(n):
        job = draw(
            job_strategy(
                calibration_length=calibration_length, long_window=long_window
            )
        )
        jobs.append(
            Job(
                job_id=i,
                release=job.release,
                deadline=job.deadline,
                processing=job.processing,
            )
        )
    return tuple(jobs)


@st.composite
def instance_strategy(
    draw,
    min_jobs: int = 1,
    max_jobs: int = 8,
    calibration_length: float = 10.0,
    long_window: bool | None = None,
    max_machines: int = 3,
):
    jobs = draw(
        jobs_strategy(
            min_jobs=min_jobs,
            max_jobs=max_jobs,
            calibration_length=calibration_length,
            long_window=long_window,
        )
    )
    machines = draw(st.integers(1, max_machines))
    return Instance(
        jobs=jobs, machines=machines, calibration_length=calibration_length
    )


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def t10() -> float:
    """The default calibration length used across tests."""
    return 10.0


@pytest.fixture
def seeds() -> list[int]:
    """Standard seed set for generator-driven sweeps."""
    return [0, 1, 2, 3, 4]
