"""Tests for the calibration-consolidation local search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import solve_ise
from repro.core import (
    Calibration,
    CalibrationSchedule,
    Instance,
    Job,
    Schedule,
    ScheduledJob,
    validate_ise,
)
from repro.instances import long_window_instance, mixed_instance
from repro.longwindow import LongWindowSolver
from repro.postopt import consolidate
from repro.shortwindow import ShortWindowSolver
from repro.instances import short_window_instance


class TestConsolidateBasics:
    def test_merges_two_half_empty_calibrations(self, t10):
        """Two jobs in separate calibrations whose windows allow sharing."""
        jobs = (
            Job(0, 0.0, 40.0, 3.0),
            Job(1, 0.0, 40.0, 3.0),
        )
        inst = Instance(jobs=jobs, machines=2, calibration_length=t10)
        schedule = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0), Calibration(0.0, 1)), 2, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(0.0, 1, 1)),
        )
        result = consolidate(inst, schedule)
        assert result.final_calibrations == 1
        assert result.removed_calibrations == 1
        assert validate_ise(inst, result.schedule).ok

    def test_respects_windows(self, t10):
        """Jobs with disjoint windows cannot be merged."""
        jobs = (
            Job(0, 0.0, 12.0, 3.0),
            Job(1, 100.0, 112.0, 3.0),
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0), Calibration(100.0, 0)), 1, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(100.0, 0, 1)),
        )
        result = consolidate(inst, schedule)
        assert result.final_calibrations == 2
        assert result.removed_calibrations == 0

    def test_respects_capacity(self, t10):
        """Full calibrations cannot absorb more work."""
        jobs = (
            Job(0, 0.0, 40.0, 9.0),
            Job(1, 0.0, 40.0, 9.0),
        )
        inst = Instance(jobs=jobs, machines=2, calibration_length=t10)
        schedule = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0), Calibration(0.0, 1)), 2, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(0.0, 1, 1)),
        )
        result = consolidate(inst, schedule)
        assert result.final_calibrations == 2

    def test_empty_schedule(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        from repro.core.schedule import empty_schedule

        result = consolidate(inst, empty_schedule(t10))
        assert result.final_calibrations == 0
        assert result.improvement == 0.0

    def test_max_rounds_cap(self, t10):
        jobs = tuple(Job(i, 0.0, 40.0, 1.0) for i in range(4))
        inst = Instance(jobs=jobs, machines=4, calibration_length=t10)
        schedule = Schedule(
            calibrations=CalibrationSchedule(
                tuple(Calibration(0.0, i) for i in range(4)), 4, t10
            ),
            placements=tuple(ScheduledJob(0.0, i, i) for i in range(4)),
        )
        capped = consolidate(inst, schedule, max_rounds=1)
        assert capped.removed_calibrations == 1
        full = consolidate(inst, schedule)
        assert full.final_calibrations == 1

    def test_rejects_infeasible_input(self, t10):
        jobs = (Job(0, 0.0, 40.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = Schedule(
            calibrations=CalibrationSchedule((), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        with pytest.raises(ValueError):
            consolidate(inst, schedule)


class TestConsolidateOnPipelineOutputs:
    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_and_always_valid_long(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        base = LongWindowSolver().solve(gen.instance).schedule
        result = consolidate(gen.instance, base)
        assert result.final_calibrations <= base.num_calibrations
        report = validate_ise(gen.instance, result.schedule)
        assert report.ok, report.summary()
        assert result.schedule.scheduled_job_ids() == base.scheduled_job_ids()

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_and_always_valid_short(self, seed):
        gen = short_window_instance(15, 2, 10.0, seed)
        base = ShortWindowSolver().solve(gen.instance).schedule
        result = consolidate(gen.instance, base)
        assert result.final_calibrations <= base.num_calibrations
        assert validate_ise(gen.instance, result.schedule).ok

    def test_preserves_speed(self):
        gen = long_window_instance(10, 1, 10.0, 2)
        solver = LongWindowSolver()
        _, traded = solver.solve_with_speed(gen.instance)
        result = consolidate(gen.instance, traded.schedule)
        assert result.schedule.speed == traded.schedule.speed
        assert validate_ise(gen.instance, result.schedule).ok


@given(seed=st.integers(0, 5000), n=st.integers(4, 14))
@settings(max_examples=12, deadline=None)
def test_consolidate_property(seed, n):
    """On any solver output: feasible, never worse, and never below the
    certified lower bound (sanity of the improvement accounting)."""
    gen = mixed_instance(n, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    improved = consolidate(gen.instance, result.schedule)
    assert improved.final_calibrations <= result.num_calibrations
    assert improved.final_calibrations >= result.lower_bound.best - 1e-6
    assert validate_ise(gen.instance, improved.schedule).ok


class TestIdempotence:
    @pytest.mark.parametrize("seed", range(3))
    def test_consolidate_is_idempotent(self, seed):
        """A consolidated schedule cannot be consolidated further."""
        gen = mixed_instance(14, 2, 10.0, seed)
        base = solve_ise(gen.instance).schedule
        once = consolidate(gen.instance, base)
        twice = consolidate(gen.instance, once.schedule)
        assert twice.removed_calibrations == 0
        assert twice.final_calibrations == once.final_calibrations
