"""White-box tests for the consolidation internals (gaps, placement)."""

from __future__ import annotations

import pytest

from repro.core import Calibration, Job, ScheduledJob
from repro.postopt.consolidate import _CalSlot, _gaps, _try_place


def _slot(start: float, machine: int, jobs: list[tuple[int, float]]) -> _CalSlot:
    return _CalSlot(
        calibration=Calibration(start=start, machine=machine),
        jobs=[ScheduledJob(start=s, machine=machine, job_id=jid) for jid, s in jobs],
    )


class TestGaps:
    def test_empty_calibration_is_one_gap(self):
        slot = _slot(10.0, 0, [])
        assert _gaps(slot, 10.0, {}, 1.0) == [(10.0, 20.0)]

    def test_gaps_around_jobs(self):
        processing = {1: 2.0, 2: 3.0}
        slot = _slot(0.0, 0, [(1, 2.0), (2, 6.0)])
        gaps = _gaps(slot, 10.0, processing, 1.0)
        assert gaps == [(0.0, 2.0), (4.0, 6.0), (9.0, 10.0)]

    def test_full_calibration_no_gaps(self):
        processing = {1: 10.0}
        slot = _slot(0.0, 0, [(1, 0.0)])
        assert _gaps(slot, 10.0, processing, 1.0) == []

    def test_speed_scales_occupancy(self):
        processing = {1: 10.0}
        slot = _slot(0.0, 0, [(1, 0.0)])
        gaps = _gaps(slot, 10.0, processing, 2.0)  # duration 5
        assert gaps == [(5.0, 10.0)]


class TestTryPlace:
    def test_places_in_first_feasible_gap(self):
        processing = {1: 4.0}
        slot = _slot(0.0, 0, [(1, 0.0)])
        job = Job(9, 0.0, 30.0, 3.0)
        start = _try_place(job, slot, 10.0, {**processing, 9: 3.0}, 1.0)
        assert start == pytest.approx(4.0)

    def test_respects_release(self):
        slot = _slot(0.0, 0, [])
        job = Job(9, 6.0, 30.0, 3.0)
        start = _try_place(job, slot, 10.0, {9: 3.0}, 1.0)
        assert start == pytest.approx(6.0)

    def test_respects_deadline(self):
        slot = _slot(0.0, 0, [])
        job = Job(9, 0.0, 5.0, 3.0)
        start = _try_place(job, slot, 10.0, {9: 3.0}, 1.0)
        assert start == pytest.approx(0.0)
        tight = Job(8, 4.0, 6.0, 2.0)
        assert _try_place(tight, slot, 10.0, {8: 2.0}, 1.0) == pytest.approx(4.0)
        impossible = Job(7, 9.0, 11.5, 2.0)
        # Would end at 11 > calibration end 10 from start 9; gap check fails.
        assert _try_place(impossible, slot, 10.0, {7: 2.0}, 1.0) is None

    def test_none_when_no_gap_fits(self):
        processing = {1: 9.5}
        slot = _slot(0.0, 0, [(1, 0.0)])
        job = Job(9, 0.0, 30.0, 1.0)
        assert _try_place(job, slot, 10.0, {**processing, 9: 1.0}, 1.0) is None
