"""Bounded full jitter on RetryPolicy backoff: bounds, determinism, clamps."""

from __future__ import annotations

import pytest

from repro.core.resilience import RetryPolicy, SolveBudget


def test_jitter_zero_preserves_deterministic_doubling() -> None:
    policy = RetryPolicy(attempts=4, backoff=0.5, sleep=lambda _s: None)
    assert policy.backoff_delay(1) == 0.0
    assert policy.backoff_delay(2) == 0.5
    assert policy.backoff_delay(3) == 1.0
    assert policy.backoff_delay(4) == 2.0


def test_jitter_is_bounded_below_and_above() -> None:
    # rng pinned to the extremes maps to the interval's endpoints.
    low = RetryPolicy(attempts=3, backoff=1.0, jitter=0.5, rng=lambda: 0.0,
                      sleep=lambda _s: None)
    high = RetryPolicy(attempts=3, backoff=1.0, jitter=0.5, rng=lambda: 1.0,
                       sleep=lambda _s: None)
    assert low.backoff_delay(3) == pytest.approx(1.0)  # 2.0 * (1 - 0.5)
    assert high.backoff_delay(3) == pytest.approx(2.0)
    mid = RetryPolicy(attempts=3, backoff=1.0, jitter=0.5, rng=lambda: 0.5,
                      sleep=lambda _s: None)
    assert mid.backoff_delay(3) == pytest.approx(1.5)


def test_injected_rng_makes_jitter_deterministic() -> None:
    values = iter([0.25, 0.75])
    policy = RetryPolicy(
        attempts=3, backoff=1.0, jitter=1.0, rng=lambda: next(values),
        sleep=lambda _s: None,
    )
    # full jitter: uniform in [0, delay]
    assert policy.backoff_delay(2) == pytest.approx(0.25)
    assert policy.backoff_delay(2) == pytest.approx(0.75)


def test_jitter_out_of_range_is_rejected() -> None:
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


def test_pause_before_sleeps_the_jittered_delay() -> None:
    slept: list[float] = []
    policy = RetryPolicy(
        attempts=3, backoff=2.0, jitter=0.5, rng=lambda: 0.0,
        sleep=slept.append,
    )
    policy.pause_before(2)
    assert slept == [pytest.approx(1.0)]  # 2.0 * (1 - 0.5)


def test_budget_clamp_applies_after_jitter() -> None:
    slept: list[float] = []
    policy = RetryPolicy(
        attempts=3, backoff=10.0, jitter=0.5, rng=lambda: 1.0,
        sleep=slept.append,
    )
    budget = SolveBudget(wall_clock=0.75, clock=lambda: 0.0).start()
    policy.pause_before(2, budget)
    assert slept == [pytest.approx(0.75)]  # 10s jittered delay, 0.75s left


def test_first_attempt_never_sleeps_even_with_jitter() -> None:
    slept: list[float] = []
    policy = RetryPolicy(attempts=2, backoff=5.0, jitter=1.0,
                         rng=lambda: 1.0, sleep=slept.append)
    policy.pause_before(1)
    assert slept == []
