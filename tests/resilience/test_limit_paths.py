"""Budget-exhaustion paths in the exact and backtracking MM searches.

Covers the node budget (pre-existing) and the time budget (new) in
``mm/exact.py`` and ``mm/backtrack.py``: both must raise typed
:class:`LimitExceededError` subclasses with stage context, and both must be
recoverable — by ``AutoMM``'s built-in fallback and by the registry-level
fallback chain.
"""

from __future__ import annotations

import pytest

import repro.mm.exact as exact_module
from repro.core import Instance, Job
from repro.core.errors import LimitExceededError, StageTimeoutError
from repro.core.resilience import ResiliencePolicy, SolveBudget, budget_scope
from repro.mm import AutoMM, BacktrackGreedyMM, ExactMM, validate_mm
from repro.mm.exact import feasible_on_machines
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver
from repro.testing import FakeClock


def _hard_jobs():
    """7 x 2-unit jobs in [0, 7): infeasible on 2 machines, feasible on 3.

    The preemptive lower bound is 2 (14 units of work / 7 of time), so the
    exact binary search must actually run the B&B at w=2 and exhaust it.
    """
    return tuple(Job(i, 0.0, 7.0, 2.0) for i in range(7))


class TestNodeBudget:
    def test_search_raises_typed_error_with_context(self):
        with pytest.raises(LimitExceededError) as exc_info:
            feasible_on_machines(_hard_jobs(), w=2, node_budget=1)
        err = exc_info.value
        assert err.stage == "mm"
        assert err.backend == "exact"
        assert "node budget" in str(err)

    def test_exact_mm_surfaces_the_node_budget(self):
        with pytest.raises(LimitExceededError):
            ExactMM(node_budget=1).solve(_hard_jobs())

    def test_ample_budget_solves_the_same_instance(self):
        schedule = ExactMM().solve(_hard_jobs())
        assert schedule.num_machines == 3
        assert validate_mm(_hard_jobs(), schedule) == []


class TestTimeBudget:
    def test_exact_time_budget_raises_stage_timeout(self, monkeypatch):
        # Poll every node so an already-expired deadline fires immediately
        # and deterministically, regardless of machine speed.
        monkeypatch.setattr(exact_module, "_BUDGET_POLL_NODES", 1)
        with pytest.raises(StageTimeoutError) as exc_info:
            ExactMM(time_budget=-1.0).solve(_hard_jobs())
        assert exc_info.value.stage == "mm"
        assert exc_info.value.backend == "exact"

    def test_exact_ambient_budget_raises_stage_timeout(self, monkeypatch):
        monkeypatch.setattr(exact_module, "_BUDGET_POLL_NODES", 1)
        clock = FakeClock(step=10.0)
        with budget_scope(SolveBudget(wall_clock=5.0, clock=clock)):
            with pytest.raises(StageTimeoutError):
                ExactMM().solve(_hard_jobs())

    def test_time_budget_is_a_limit_exceeded_error(self):
        # StageTimeoutError must subclass LimitExceededError so every
        # pre-existing node-budget recovery path also covers timeouts.
        assert issubclass(StageTimeoutError, LimitExceededError)

    def test_backtrack_time_budget_raises_stage_timeout(self):
        with pytest.raises(StageTimeoutError) as exc_info:
            BacktrackGreedyMM(time_budget=-1.0).solve(_hard_jobs())
        assert exc_info.value.stage == "mm"
        assert "backtrack" in exc_info.value.backend

    def test_backtrack_ambient_budget_raises_stage_timeout(self):
        clock = FakeClock(step=10.0)
        with budget_scope(SolveBudget(wall_clock=5.0, clock=clock)):
            with pytest.raises(StageTimeoutError):
                BacktrackGreedyMM().solve(_hard_jobs())

    def test_backtrack_without_budget_is_unaffected(self):
        schedule = BacktrackGreedyMM().solve(_hard_jobs())
        assert validate_mm(_hard_jobs(), schedule) == []


class TestRecovery:
    def test_auto_mm_recovers_from_node_budget(self):
        schedule = AutoMM(node_budget=1).solve(_hard_jobs())
        assert validate_mm(_hard_jobs(), schedule) == []

    def test_auto_mm_recovers_from_time_budget(self, monkeypatch):
        # The new time budget rides AutoMM's existing except-LimitExceeded
        # recovery because StageTimeoutError subclasses it.
        monkeypatch.setattr(exact_module, "_BUDGET_POLL_NODES", 1)
        schedule = AutoMM(node_budget=10**9, time_budget=-1.0).solve(
            _hard_jobs()
        )
        assert validate_mm(_hard_jobs(), schedule) == []

    def test_registry_chain_recovers_from_exhausted_exact(self):
        # A non-strict short-window solve whose primary MM box dies on its
        # node budget must fall back down the chain and still validate.
        # The hard jobs have windows of 7 < 2T = 20, so they land in one
        # interval bucket whose B&B genuinely runs (and dies at 1 node).
        instance = Instance(
            jobs=_hard_jobs(), machines=3, calibration_length=10.0
        )
        cfg = ShortWindowConfig(
            mm_algorithm=ExactMM(node_budget=1),
            resilience=ResiliencePolicy(strict=False),
        )
        result = ShortWindowSolver(cfg).solve(instance)
        assert result.resilience.degraded
        assert any("exact" in f for f in result.resilience.fallbacks)

    def test_strict_short_window_propagates_the_limit(self):
        instance = Instance(
            jobs=_hard_jobs(), machines=3, calibration_length=10.0
        )
        cfg = ShortWindowConfig(mm_algorithm=ExactMM(node_budget=1))
        with pytest.raises(LimitExceededError):
            ShortWindowSolver(cfg).solve(instance)
