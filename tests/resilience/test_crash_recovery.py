"""Chaos suite for the crash-safe execution layer.

Kills the driving process at chosen shards, hard-kills worker processes,
tears journal tails, and corrupts artifacts — then asserts the recovery
contract: a resumed run's results are byte-identical to an uninterrupted
run's, torn tails are truncated (never silently trusted), dead-worker
shards are retried and then quarantined with structured error context, and
a completed journal resumes by re-solving exactly zero shards.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import (
    SweepCase,
    case_key,
    outcome_from_dict,
    outcome_to_dict,
    run_sweep_report,
    sweep_fingerprint,
)
from repro.analysis.sweep import _solve_case, _CaseTask  # test-only: shard fn
from repro.core.checkpoint import CheckpointedRun, ShardJournal, TornTailWarning
from repro.testing import (
    CrashAfter,
    KillWorkerOnce,
    SimulatedProcessKill,
    corrupt_journal_tail,
    tear_file,
)

CASES = [
    SweepCase(family="mixed", n=6, machines=2, calibration_length=10.0, seed=seed)
    for seed in range(4)
]
N = len(CASES)


def _strip(outcome) -> dict:
    """Outcome as a JSON dict minus ``wall_seconds`` (a measurement, not an
    output — byte-identity is over the solved results)."""
    payload = outcome_to_dict(outcome)
    del payload["wall_seconds"]
    return payload


@pytest.fixture(scope="module")
def baseline():
    """Outcomes of an uninterrupted serial sweep, as JSON dicts."""
    report = run_sweep_report(CASES, mode="serial")
    assert report.ok and len(report.outcomes) == N
    return [_strip(o) for o in report.outcomes]


def _crash_at_shard(checkpoint_dir, k: int) -> ShardJournal:
    """Run the sweep's shard loop but die right before shard ``k`` completes.

    Drives :class:`CheckpointedRun` with the sweep's own shard function,
    journal path, and fingerprint, so the journal left behind is exactly
    what ``repro-ise sweep --checkpoint-dir`` would leave after a SIGKILL
    with ``k`` shards done.
    """
    tasks = [_CaseTask(case=case, config=None, postopt=True) for case in CASES]
    journal = ShardJournal(checkpoint_dir / "sweep.journal.jsonl")
    run = CheckpointedRun(
        journal=journal, fingerprint=sweep_fingerprint(CASES, None, True)
    )
    crashing = CrashAfter(inner=_solve_case, crash_at=k + 1)
    with pytest.raises(SimulatedProcessKill):
        run.map(
            crashing,
            tasks,
            [case_key(case) for case in CASES],
            encode=outcome_to_dict,
            decode=outcome_from_dict,
            mode="serial",
        )
    return journal


class TestKillAndResume:
    @pytest.mark.parametrize("k", [0, N // 2, N - 1])
    def test_resume_after_kill_is_byte_identical(self, k, tmp_path, baseline):
        journal = _crash_at_shard(tmp_path, k)
        # the crash left exactly the completed prefix durably journaled
        assert len(journal.load().done_payloads()) == k

        report = run_sweep_report(
            CASES, mode="serial", checkpoint_dir=tmp_path, resume=True
        )
        assert report.ok
        assert report.restored == k
        assert report.solved == N - k
        assert [_strip(o) for o in report.outcomes] == baseline

    def test_completed_journal_resolves_zero_shards(self, tmp_path, baseline):
        first = run_sweep_report(
            CASES, mode="serial", checkpoint_dir=tmp_path
        )
        assert first.ok and first.solved == N
        again = run_sweep_report(
            CASES, mode="serial", checkpoint_dir=tmp_path, resume=True
        )
        assert again.solved == 0
        assert again.restored == N
        assert [_strip(o) for o in again.outcomes] == baseline


class TestTornJournals:
    def test_corrupt_tail_truncated_then_resumed(self, tmp_path, baseline):
        journal = _crash_at_shard(tmp_path, N - 1)
        corrupt_journal_tail(journal.path)
        with pytest.warns(TornTailWarning):
            report = run_sweep_report(
                CASES, mode="serial", checkpoint_dir=tmp_path, resume=True
            )
        assert report.ok
        assert [_strip(o) for o in report.outcomes] == baseline

    def test_torn_last_record_resolves_that_shard(self, tmp_path, baseline):
        journal = _crash_at_shard(tmp_path, N - 1)
        tear_file(journal.path, drop_bytes=20)  # shred the last record
        with pytest.warns(TornTailWarning):
            report = run_sweep_report(
                CASES, mode="serial", checkpoint_dir=tmp_path, resume=True
            )
        assert report.ok
        assert report.restored == N - 2  # the torn record's shard re-solved
        assert report.solved == 2
        assert [_strip(o) for o in report.outcomes] == baseline


def _double(x: int) -> int:
    return x * 2


def _identity(value):
    return value


def _kill_worker(x: int) -> int:
    import os

    os._exit(13)


class TestWorkerDeath:
    def test_dead_worker_retried_then_succeeds(self, tmp_path):
        marker = tmp_path / "killed.marker"
        task = KillWorkerOnce(inner=_double, marker=str(marker))
        run = CheckpointedRun(
            journal=ShardJournal(tmp_path / "j.jsonl"),
            fingerprint="fp",
            max_shard_retries=2,
        )
        outcomes = run.map(
            task, [21, 33], ["a", "b"],
            encode=_identity, decode=_identity,
            max_workers=2, mode="process",
        )
        assert marker.exists()  # a worker genuinely died
        assert [o.status for o in outcomes] == ["done", "done"]
        assert sorted(o.value for o in outcomes) == [42, 66]
        assert max(o.attempts for o in outcomes) >= 2

    def test_poison_shard_quarantined_with_context(self, tmp_path):
        journal = ShardJournal(tmp_path / "j.jsonl")
        run = CheckpointedRun(
            journal=journal, fingerprint="fp", max_shard_retries=0
        )
        outcomes = run.map(
            _kill_worker, [1, 2], ["a", "b"],
            encode=_identity, decode=_identity,
            max_workers=2, mode="process",
        )
        assert all(o.status == "failed" for o in outcomes)
        for outcome in outcomes:
            assert outcome.error_context is not None
            assert "Broken" in outcome.error_context["type"]
        state = journal.load()
        assert {r["key"] for r in state.records} == {"a", "b"}
        assert all(r["status"] == "failed" for r in state.records)

        # quarantined shards re-solve on resume with a healthy task
        recovered = CheckpointedRun(
            journal=journal, fingerprint="fp", resume=True
        ).map(
            _double, [1, 2], ["a", "b"],
            encode=_identity, decode=_identity, mode="serial",
        )
        assert [o.value for o in recovered] == [2, 4]
        assert journal.load().done_payloads() == {"a": 2, "b": 4}
