"""Structured context (stage / backend / elapsed) on the error hierarchy."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import (
    FallbacksExhaustedError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    LimitExceededError,
    ReproError,
    SolverError,
    StageTimeoutError,
)


class TestContextFields:
    def test_default_construction_has_no_context(self):
        err = SolverError("plain message")
        assert err.stage is None
        assert err.backend is None
        assert err.elapsed is None
        assert str(err) == "plain message"

    def test_full_context_renders_in_the_message(self):
        err = LimitExceededError(
            "node budget exceeded", stage="mm", backend="exact", elapsed=1.5
        )
        text = str(err)
        assert "node budget exceeded" in text
        assert "stage=mm" in text
        assert "backend=exact" in text
        assert "elapsed=1.500s" in text

    def test_partial_context_renders_only_set_fields(self):
        err = SolverError("lp died", stage="lp")
        assert "[stage=lp]" in str(err)
        assert "backend" not in str(err)

    @pytest.mark.parametrize(
        "cls",
        [
            ReproError,
            SolverError,
            LimitExceededError,
            StageTimeoutError,
            InfeasibleInstanceError,
        ],
    )
    def test_every_class_accepts_context_keywords(self, cls):
        err = cls("m", stage="lp", backend="highs", elapsed=0.25)
        assert err.stage == "lp"
        assert err.backend == "highs"
        assert err.elapsed == 0.25

    def test_infeasible_schedule_error_keeps_its_report_argument(self):
        sentinel = object()
        err = InfeasibleScheduleError("bad schedule", sentinel, stage="mm")
        assert err.report is sentinel
        assert err.stage == "mm"


class TestHierarchy:
    def test_stage_timeout_is_a_limit_exceeded_error(self):
        assert issubclass(StageTimeoutError, LimitExceededError)
        assert issubclass(StageTimeoutError, ReproError)

    def test_fallbacks_exhausted_is_a_solver_error(self):
        assert issubclass(FallbacksExhaustedError, SolverError)

    def test_fallbacks_exhausted_carries_attempts_and_cause(self):
        cause = SolverError("inner", backend="simplex")
        err = FallbacksExhaustedError(
            "all died",
            attempts=("a1", "a2"),
            last_error=cause,
            stage="lp",
            backend="highs",
        )
        assert err.attempts == ("a1", "a2")
        assert err.last_error is cause
        assert err.stage == "lp"

    def test_errors_survive_pickling(self):
        # Worker pools and result caches round-trip exceptions.
        err = StageTimeoutError("slow", stage="lp", backend="highs", elapsed=2.0)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, StageTimeoutError)
        assert str(clone) == str(err)
