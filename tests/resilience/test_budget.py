"""Unit tests for solve budgets, ambient scopes, retries, and reports.

All timing tests use :class:`repro.testing.FakeClock` — no sleeping, no
wall-clock dependence.
"""

from __future__ import annotations

import pytest

from repro.core.errors import StageTimeoutError
from repro.core.resilience import (
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    SolveBudget,
    StageAttempt,
    budget_scope,
    check_budget,
    current_budget,
)
from repro.testing import FakeClock


class TestSolveBudget:
    def test_unlimited_never_expires(self):
        budget = SolveBudget().start()
        assert budget.remaining() == float("inf")
        assert not budget.expired
        budget.ensure("lp")  # must not raise

    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=10.0, clock=clock).start()
        clock.advance(4.0)
        assert budget.elapsed() == pytest.approx(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.expired

    def test_expiry_raises_with_context(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=5.0, clock=clock).start()
        clock.advance(5.0)
        assert budget.expired
        with pytest.raises(StageTimeoutError) as exc_info:
            budget.ensure("lp", "highs")
        err = exc_info.value
        assert err.stage == "lp"
        assert err.backend == "highs"
        assert err.elapsed == pytest.approx(5.0)

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=10.0, clock=clock).start()
        clock.advance(3.0)
        budget.start()  # must not reset the countdown
        assert budget.elapsed() == pytest.approx(3.0)

    def test_fresh_resets_the_countdown(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=10.0, clock=clock).start()
        clock.advance(9.0)
        copy = budget.fresh()
        assert copy.started_at is None
        copy.start()
        assert copy.remaining() == pytest.approx(10.0)
        # The original is unaffected.
        assert budget.remaining() == pytest.approx(1.0)

    def test_stage_limit_is_min_of_stage_cap_and_global(self):
        clock = FakeClock()
        budget = SolveBudget(
            wall_clock=10.0, stage_timeouts={"lp": 2.0}, clock=clock
        ).start()
        assert budget.stage_limit("lp") == pytest.approx(2.0)
        assert budget.stage_limit("mm") == pytest.approx(10.0)
        clock.advance(9.0)
        # 1s left globally < the 2s lp cap.
        assert budget.stage_limit("lp") == pytest.approx(1.0)

    def test_stage_guard_enforces_stage_cap(self):
        clock = FakeClock()
        budget = SolveBudget(
            wall_clock=100.0, stage_timeouts={"mm": 3.0}, clock=clock
        )
        guard = budget.guard("mm", backend="exact")
        clock.advance(2.0)
        guard.ensure()  # within the stage cap
        clock.advance(2.0)
        with pytest.raises(StageTimeoutError) as exc_info:
            guard.ensure()
        assert exc_info.value.stage == "mm"
        assert exc_info.value.backend == "exact"


class TestBudgetScope:
    def test_no_ambient_budget_by_default(self):
        assert current_budget() is None
        check_budget("lp")  # no-op without a scope

    def test_scope_installs_and_restores(self):
        budget = SolveBudget(wall_clock=10.0, clock=FakeClock())
        with budget_scope(budget) as installed:
            assert installed is budget
            assert current_budget() is budget
            assert budget.started_at is not None  # scope starts the countdown
        assert current_budget() is None

    def test_none_scope_masks_outer_budget(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=1.0, clock=clock)
        with budget_scope(budget):
            clock.advance(2.0)  # outer budget is now expired
            with pytest.raises(StageTimeoutError):
                check_budget("lp")
            with budget_scope(None):
                check_budget("lp")  # masked: rescue paths run unimpeded
            with pytest.raises(StageTimeoutError):
                check_budget("lp")  # unmasked again

    def test_check_budget_polls_the_ambient_budget(self):
        clock = FakeClock()
        with budget_scope(SolveBudget(wall_clock=5.0, clock=clock)):
            check_budget("mm", "exact")
            clock.advance(6.0)
            with pytest.raises(StageTimeoutError) as exc_info:
                check_budget("mm", "exact")
            assert exc_info.value.backend == "exact"


class TestRetryPolicy:
    def test_first_attempt_never_sleeps(self):
        naps: list[float] = []
        RetryPolicy(attempts=3, backoff=1.0, sleep=naps.append).pause_before(1)
        assert naps == []

    def test_backoff_doubles_per_retry(self):
        naps: list[float] = []
        policy = RetryPolicy(attempts=4, backoff=0.5, sleep=naps.append)
        for attempt in (2, 3, 4):
            policy.pause_before(attempt)
        assert naps == [0.5, 1.0, 2.0]

    def test_zero_backoff_never_sleeps(self):
        naps: list[float] = []
        RetryPolicy(attempts=3, backoff=0.0, sleep=naps.append).pause_before(2)
        assert naps == []


class TestResiliencePolicy:
    def test_strict_chains_are_primary_only(self):
        policy = ResiliencePolicy(strict=True)
        assert policy.lp_candidates("highs") == ("highs",)
        assert policy.mm_candidates("exact") == ("exact",)

    def test_non_strict_appends_default_chain_without_duplicates(self):
        policy = ResiliencePolicy(strict=False)
        assert policy.lp_candidates("highs") == ("highs", "simplex")
        assert policy.lp_candidates("simplex") == ("simplex", "highs")
        assert policy.mm_candidates("best_greedy") == (
            "best_greedy",
            "greedy_edf",
        )

    def test_custom_chains_override_defaults(self):
        policy = ResiliencePolicy(strict=False, mm_chain=("greedy_lpt",))
        assert policy.mm_candidates("exact") == ("exact", "greedy_lpt")

    def test_fresh_budget_copies_the_template(self):
        template = SolveBudget(wall_clock=7.0, clock=FakeClock())
        policy = ResiliencePolicy(budget=template)
        budget = policy.fresh_budget()
        assert budget is not template
        assert budget.wall_clock == 7.0
        assert budget.started_at is None
        assert ResiliencePolicy().fresh_budget() is None


class TestResilienceReport:
    def test_fallback_marks_degraded(self):
        report = ResilienceReport()
        assert not report.degraded
        report.record_fallback("lp", "highs", "simplex")
        assert report.degraded
        assert report.fallbacks == ["lp: highs -> simplex"]

    def test_retry_and_failure_counters(self):
        report = ResilienceReport()
        report.record(StageAttempt("lp", "highs", "failed", attempt=1))
        report.record(StageAttempt("lp", "highs", "ok", attempt=2))
        assert report.num_failures == 1
        assert report.num_retries == 1

    def test_merge_folds_sub_reports(self):
        outer, inner = ResilienceReport(), ResilienceReport()
        inner.record(StageAttempt("mm", "exact", "failed"))
        inner.record_fallback("mm", "exact", "best_greedy")
        inner.record_times({"mm": 1.5})
        outer.merge(inner, prefix="short")
        outer.merge(None)  # tolerated
        assert outer.degraded
        assert outer.fallbacks == ["mm: exact -> best_greedy"]
        assert outer.wall_times == {"short.mm": 1.5}

    def test_summary_and_to_dict(self):
        report = ResilienceReport()
        assert "clean" in report.summary()
        report.record(
            StageAttempt("lp", "highs", "timeout", error="deadline", elapsed=2.0)
        )
        report.record_fallback("lp", "highs", "simplex")
        summary = report.summary()
        assert "degraded" in summary
        assert "highs -> simplex" in summary
        payload = report.to_dict()
        assert payload["degraded"] is True
        assert payload["attempts"][0]["outcome"] == "timeout"
