"""The chaos matrix: inject faults into every stage, in every flavor.

Acceptance criteria for the resilient solving layer:

* ``strict=False``: injecting a failure, garbage output, or a timeout into
  any stage — the HiGHS LP, the simplex LP, any registered MM algorithm,
  or the whole long-window pipeline — still yields a schedule that passes
  :func:`check_ise`, with the fallback recorded in the
  :class:`ResilienceReport`;
* ``strict=True``: the same injections raise a *typed*
  :class:`ReproError` subclass — never a bare exception.
"""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, ReproError, check_ise
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import mixed_instance, short_window_instance
from repro.mm.registry import MM_ALGORITHMS
from repro.testing import FaultPlan, inject_lp_fault, inject_mm_fault

KINDS = ("fail", "garbage", "timeout")

# Every registered MM algorithm doubles as a chaos target: the fault is
# injected into the registry under its own name while it is the configured
# primary, so the chain must route around it.
MM_NAMES = sorted(MM_ALGORITHMS)


@pytest.fixture(scope="module")
def mixed():
    return mixed_instance(
        n=24, machines=2, calibration_length=10.0, seed=5
    ).instance


@pytest.fixture(scope="module")
def shortish():
    return short_window_instance(
        n=14, machines=2, calibration_length=10.0, seed=2
    ).instance


def _assert_recovered(instance, result, expect_fallback_from: str):
    check_ise(instance, result.schedule, context="chaos recovery")
    assert result.degraded
    assert result.resilience is not None
    assert any(
        expect_fallback_from in hop for hop in result.resilience.fallbacks
    ), result.resilience.fallbacks


class TestLPChaos:
    @pytest.mark.parametrize("kind", KINDS)
    def test_highs_fault_recovers_via_simplex(self, mixed, kind):
        with inject_lp_fault("highs", FaultPlan(kind)):
            result = solve_ise(mixed, ISEConfig(strict=False))
        _assert_recovered(mixed, result, "highs")

    @pytest.mark.parametrize("kind", KINDS)
    def test_simplex_fault_recovers_via_highs(self, mixed, kind):
        with inject_lp_fault("simplex", FaultPlan(kind)):
            result = solve_ise(
                mixed, ISEConfig(lp_backend="simplex", strict=False)
            )
        _assert_recovered(mixed, result, "simplex")

    @pytest.mark.parametrize("kind", KINDS)
    def test_strict_highs_fault_raises_typed(self, mixed, kind):
        with inject_lp_fault("highs", FaultPlan(kind)):
            with pytest.raises(ReproError):
                solve_ise(mixed, ISEConfig(strict=True))

    @pytest.mark.parametrize("kind", KINDS)
    def test_transient_fault_recovers_on_retry_without_fallback(
        self, mixed, kind
    ):
        from repro.core.resilience import ResiliencePolicy, RetryPolicy

        config = ISEConfig(
            resilience=ResiliencePolicy(
                strict=False,
                retry=RetryPolicy(attempts=2, sleep=lambda _: None),
            )
        )
        with inject_lp_fault("highs", FaultPlan(kind, at_calls=(1,))):
            result = solve_ise(mixed, config)
        check_ise(mixed, result.schedule, context="chaos retry")
        assert result.resilience.num_retries >= 1
        # The *same* backend recovered, so no LP fallback hop was taken.
        assert not any("lp" in hop for hop in result.resilience.fallbacks)


class TestMMChaos:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", MM_NAMES)
    def test_each_registered_algorithm_fault_recovers(
        self, shortish, name, kind
    ):
        with inject_mm_fault(name, FaultPlan(kind)):
            result = solve_ise(
                shortish, ISEConfig(mm_algorithm=name, strict=False)
            )
        _assert_recovered(shortish, result, name)

    @pytest.mark.parametrize("kind", KINDS)
    def test_strict_mm_fault_raises_typed(self, shortish, kind):
        with inject_mm_fault("best_greedy", FaultPlan(kind)):
            with pytest.raises(ReproError):
                solve_ise(
                    shortish,
                    ISEConfig(mm_algorithm="best_greedy", strict=True),
                )


class TestPipelineChaos:
    @pytest.mark.parametrize("kind", KINDS)
    def test_both_lp_backends_down_degrades_to_greedy_tise(self, mixed, kind):
        with inject_lp_fault("highs", FaultPlan(kind)):
            with inject_lp_fault("simplex", FaultPlan(kind)):
                result = solve_ise(mixed, ISEConfig(strict=False))
        _assert_recovered(mixed, result, "greedy_tise")

    @pytest.mark.parametrize("kind", KINDS)
    def test_whole_mm_chain_down_degrades_to_one_calibration_per_job(
        self, shortish, kind
    ):
        with inject_mm_fault("best_greedy", FaultPlan(kind)):
            with inject_mm_fault("greedy_edf", FaultPlan(kind)):
                result = solve_ise(shortish, ISEConfig(strict=False))
        _assert_recovered(shortish, result, "one_calibration_per_job")

    @pytest.mark.parametrize("kind", KINDS)
    def test_strict_pipeline_failure_raises_typed(self, mixed, kind):
        with inject_lp_fault("highs", FaultPlan(kind)):
            with inject_lp_fault("simplex", FaultPlan(kind)):
                with pytest.raises(ReproError):
                    solve_ise(mixed, ISEConfig(strict=True))

    def test_everything_down_still_yields_a_valid_schedule(self, mixed):
        # Total chaos: every LP backend and the entire default MM chain are
        # failing, yet the non-strict solver must still deliver.
        with inject_lp_fault("highs", FaultPlan("fail")):
            with inject_lp_fault("simplex", FaultPlan("garbage")):
                with inject_mm_fault("best_greedy", FaultPlan("timeout")):
                    with inject_mm_fault("greedy_edf", FaultPlan("fail")):
                        result = solve_ise(mixed, ISEConfig(strict=False))
        check_ise(mixed, result.schedule, context="total chaos")
        assert result.degraded
        hops = " / ".join(result.resilience.fallbacks)
        assert "greedy_tise" in hops
        assert "one_calibration_per_job" in hops


class TestTimeoutBudget:
    def test_tiny_timeout_non_strict_degrades_not_dies(self, mixed):
        result = solve_ise(mixed, ISEConfig(strict=False, timeout=1e-9))
        check_ise(mixed, result.schedule, context="expired budget")
        assert result.degraded

    def test_tiny_timeout_strict_raises_typed(self, mixed):
        from repro.core.errors import LimitExceededError

        with pytest.raises(LimitExceededError):
            solve_ise(mixed, ISEConfig(strict=True, timeout=1e-9))

    def test_generous_timeout_is_invisible(self, mixed):
        baseline = solve_ise(mixed, ISEConfig())
        budgeted = solve_ise(mixed, ISEConfig(timeout=300.0))
        assert budgeted.num_calibrations == baseline.num_calibrations
        assert not budgeted.degraded


class TestInfeasibleStaysInfeasible:
    def test_degradation_never_fakes_feasibility(self):
        # 7 full-calibration jobs crammed into [0, 2T) exceed what even the
        # Lemma 2 budget of 3m machines can calibrate (6 calibrations x T
        # work < 7T), so the LP certifies infeasibility on m = 1.
        # Non-strict mode must still say so (typed), not invent an answer.
        from repro.core.errors import InfeasibleInstanceError

        bad = Instance(
            jobs=tuple(Job(i, 0.0, 20.0, 10.0) for i in range(7)),
            machines=1,
            calibration_length=10.0,
        )
        with pytest.raises(InfeasibleInstanceError):
            solve_ise(bad, ISEConfig(strict=False))
