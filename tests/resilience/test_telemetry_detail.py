"""Per-attempt backend telemetry: the ``detail`` field on StageAttempt.

``run_with_fallbacks(..., telemetry=...)`` extracts solver counters (LP
iterations, warm-start flags, ...) from a successful result and attaches
them to the ``ok`` attempt record, where the serve layer and benches read
them back.  Telemetry is observability, never control flow: a hook that
raises must be swallowed, and the counters must survive the report's
dict round-trip losslessly.
"""

from __future__ import annotations

import pytest

from repro.core.resilience import (
    ResilienceReport,
    StageAttempt,
    run_with_fallbacks,
)


class TestDetailRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        report = ResilienceReport()
        report.record(
            StageAttempt(
                "lp",
                "simplex",
                "ok",
                attempt=1,
                elapsed=0.25,
                detail={"iterations": 42.0, "warm_started": 1.0},
            )
        )
        restored = ResilienceReport.from_dict(report.to_dict())
        assert restored.attempts[0].detail == {
            "iterations": 42.0,
            "warm_started": 1.0,
        }
        assert restored.to_dict() == report.to_dict()

    def test_missing_detail_parses_as_empty(self):
        payload = ResilienceReport().to_dict()
        payload["attempts"] = [
            {"stage": "lp", "backend": "highs", "outcome": "ok", "attempt": 1}
        ]
        restored = ResilienceReport.from_dict(payload)
        assert restored.attempts[0].detail == {}


class TestTelemetryHook:
    def test_counters_attach_to_the_ok_attempt(self):
        report = ResilienceReport()
        result = run_with_fallbacks(
            "lp",
            [("simplex", lambda: "answer")],
            report=report,
            telemetry=lambda r: {"iterations": 7, "solve_ms": 1.5},
        )
        assert result == "answer"
        (attempt,) = report.attempts
        assert attempt.outcome == "ok"
        assert attempt.detail == {"iterations": 7.0, "solve_ms": 1.5}

    def test_failed_attempts_carry_no_detail(self):
        report = ResilienceReport()

        def boom():
            raise RuntimeError("no")

        result = run_with_fallbacks(
            "lp",
            [("highs", boom), ("simplex", lambda: "fallback")],
            report=report,
            telemetry=lambda r: {"iterations": 3},
        )
        assert result == "fallback"
        failed, ok = report.attempts
        assert failed.outcome == "failed" and failed.detail == {}
        assert ok.outcome == "ok" and ok.detail == {"iterations": 3.0}

    def test_raising_hook_is_swallowed(self):
        report = ResilienceReport()

        def bad_hook(result):
            raise TypeError("not a solution object")

        result = run_with_fallbacks(
            "lp",
            [("simplex", lambda: object())],
            report=report,
            telemetry=bad_hook,
        )
        assert result is not None
        (attempt,) = report.attempts
        assert attempt.outcome == "ok"
        assert attempt.detail == {}

    def test_no_hook_means_empty_detail(self):
        report = ResilienceReport()
        run_with_fallbacks("lp", [("simplex", lambda: 1)], report=report)
        assert report.attempts[0].detail == {}
