"""Regression tests: retry backoff must respect the solve budget.

The bug class: an exponential backoff sleeping *past* an almost-expired
deadline, so a request that should fail fast at t=T instead fails slow at
t=T+backoff.  ``RetryPolicy.pause_before`` therefore clamps every sleep to
the budget's remaining wall clock and skips the sleep entirely when
nothing remains.  All timing here is driven by a :class:`FakeClock` — no
test ever sleeps for real.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SolverError, StageTimeoutError
from repro.core.resilience import (
    ResilienceReport,
    RetryPolicy,
    SolveBudget,
    run_with_fallbacks,
)
from repro.testing.faults import FakeClock


class RecordingSleeper:
    """An injectable sleeper that logs delays and advances the fake clock."""

    def __init__(self, clock: FakeClock) -> None:
        self.clock = clock
        self.slept: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.clock.advance(seconds)


def test_backoff_is_clamped_to_remaining_wall_clock() -> None:
    clock = FakeClock()
    sleeper = RecordingSleeper(clock)
    budget = SolveBudget(wall_clock=5.0, clock=clock).start()
    clock.advance(4.0)  # 1.0s remaining
    policy = RetryPolicy(attempts=3, backoff=2.0, sleep=sleeper)

    policy.pause_before(2, budget=budget)

    assert sleeper.slept == [1.0]  # 2.0s backoff clamped to the 1.0s left


def test_backoff_is_skipped_when_budget_already_expired() -> None:
    clock = FakeClock()
    sleeper = RecordingSleeper(clock)
    budget = SolveBudget(wall_clock=5.0, clock=clock).start()
    clock.advance(6.0)  # expired

    RetryPolicy(attempts=3, backoff=2.0, sleep=sleeper).pause_before(
        2, budget=budget
    )

    assert sleeper.slept == []  # no real time burned before ensure() raises


def test_backoff_unclamped_without_budget() -> None:
    sleeper = RecordingSleeper(FakeClock())
    policy = RetryPolicy(attempts=4, backoff=2.0, sleep=sleeper)

    policy.pause_before(2)
    policy.pause_before(3)
    policy.pause_before(4)

    assert sleeper.slept == [2.0, 4.0, 8.0]  # plain exponential schedule


def test_first_attempt_never_sleeps() -> None:
    clock = FakeClock()
    sleeper = RecordingSleeper(clock)
    budget = SolveBudget(wall_clock=5.0, clock=clock).start()

    RetryPolicy(attempts=3, backoff=2.0, sleep=sleeper).pause_before(
        1, budget=budget
    )

    assert sleeper.slept == []


def test_run_with_fallbacks_never_outsleeps_the_deadline() -> None:
    """End-to-end: a flaky backend with a huge backoff under a tight budget.

    The first attempt fails with 3s left; the 10s backoff must be clamped
    to exactly those 3s, after which the deadline check fires instead of a
    second attempt starting.
    """
    clock = FakeClock()
    sleeper = RecordingSleeper(clock)
    budget = SolveBudget(wall_clock=5.0, clock=clock).start()
    report = ResilienceReport()
    calls = {"n": 0}

    def flaky() -> None:
        calls["n"] += 1
        clock.advance(2.0)  # the attempt itself costs 2s
        raise SolverError("injected", stage="mm", backend="flaky")

    with pytest.raises(StageTimeoutError):
        run_with_fallbacks(
            "mm",
            [("flaky", flaky)],
            report=report,
            retry=RetryPolicy(attempts=3, backoff=10.0, sleep=sleeper),
            budget=budget,
        )

    assert calls["n"] == 1  # the retry was never started
    assert sleeper.slept == [3.0]  # 10s backoff clamped to the 3s remaining
    assert [a.outcome for a in report.attempts] == ["failed"]


def test_expired_budget_skips_sleep_and_raises_promptly() -> None:
    """When the attempt itself exhausts the budget, the retry costs nothing."""
    clock = FakeClock()
    sleeper = RecordingSleeper(clock)
    budget = SolveBudget(wall_clock=5.0, clock=clock).start()
    report = ResilienceReport()

    def exhausting() -> None:
        clock.advance(7.0)  # blows straight through the deadline
        raise SolverError("injected", stage="mm", backend="slow")

    with pytest.raises(StageTimeoutError):
        run_with_fallbacks(
            "mm",
            [("slow", exhausting)],
            report=report,
            retry=RetryPolicy(attempts=2, backoff=4.0, sleep=sleeper),
            budget=budget,
        )

    assert sleeper.slept == []  # pause skipped: nothing remained
