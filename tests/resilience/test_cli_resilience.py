"""CLI surface of the resilience layer: --timeout, --no-strict, exit codes.

``main()`` is called in-process so the fault-injection registry swaps are
visible to the solve it runs.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.instances import mixed_instance, save_instance
from repro.testing import FaultPlan, inject_lp_fault


@pytest.fixture()
def instance_path(tmp_path):
    gen = mixed_instance(n=20, machines=2, calibration_length=10.0, seed=4)
    path = tmp_path / "instance.json"
    save_instance(gen.instance, str(path))
    return str(path)


class TestExitCodes:
    def test_clean_solve_exits_zero(self, instance_path, capsys):
        assert main(["solve", instance_path]) == 0
        assert "DEGRADED" not in capsys.readouterr().out

    def test_missing_file_still_exits_two(self, tmp_path):
        assert main(["solve", str(tmp_path / "absent.json")]) == 2

    def test_expired_timeout_strict_exits_three(self, instance_path, capsys):
        assert main(["solve", instance_path, "--timeout", "1e-9"]) == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_solver_failure_strict_exits_four(self, instance_path, capsys):
        with inject_lp_fault("highs", FaultPlan("fail")):
            code = main(["solve", instance_path])
        assert code == 4
        assert "solver failure" in capsys.readouterr().err


class TestNoStrict:
    def test_backend_failure_degrades_and_exits_zero(
        self, instance_path, capsys
    ):
        with inject_lp_fault("highs", FaultPlan("fail")):
            code = main(["solve", instance_path, "--no-strict"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "highs -> simplex" in out

    def test_expired_timeout_non_strict_degrades_and_exits_zero(
        self, instance_path, capsys
    ):
        code = main(
            ["solve", instance_path, "--timeout", "1e-9", "--no-strict"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "calibrations" in out

    def test_generous_timeout_matches_default_output(
        self, instance_path, capsys
    ):
        assert main(["solve", instance_path]) == 0
        baseline = capsys.readouterr().out
        assert (
            main(["solve", instance_path, "--timeout", "600", "--no-strict"])
            == 0
        )
        assert capsys.readouterr().out == baseline
