"""The result-corruption injectors: seam, restore semantics, helpers."""

from __future__ import annotations

import pytest

from repro.core.solver import ISEConfig, ISESolver, solve_ise
from repro.core.validate import check_ise
from repro.instances import mixed_instance
from repro.lp import Basis, BasisStash
from repro.testing import (
    FaultPlan,
    inject_ise_corruption,
    poison_stash,
    scrambled_basis,
)


@pytest.fixture(scope="module")
def instance():
    return mixed_instance(10, 2, 10.0, seed=1).instance


class TestInjectIseCorruption:
    def test_corrupts_selected_calls_only(self, instance) -> None:
        with inject_ise_corruption(FaultPlan("garbage", at_calls=(1,))) as plan:
            first = solve_ise(instance, ISEConfig())
            second = solve_ise(instance, ISEConfig())
        assert plan.calls == 2
        assert len(first.schedule.placements) < len(second.schedule.placements)
        check_ise(instance, second.schedule, context="untouched call")

    def test_restores_the_seam_on_exit(self, instance) -> None:
        original = ISESolver._certified
        with inject_ise_corruption(FaultPlan("garbage")):
            assert ISESolver._certified is not original
        assert ISESolver._certified is original
        check_ise(
            instance, solve_ise(instance, ISEConfig()).schedule, context="after"
        )

    def test_restores_on_error_inside_the_block(self, instance) -> None:
        original = ISESolver._certified
        with pytest.raises(RuntimeError):
            with inject_ise_corruption(FaultPlan("garbage")):
                raise RuntimeError("boom")
        assert ISESolver._certified is original


class TestScrambledBasis:
    def test_rotation_keeps_shape_but_moves_every_column(self) -> None:
        basis = Basis(m=3, n=6, basic=(0, 2, 4), at_upper=(5,))
        bad = scrambled_basis(basis)
        assert bad.matches(3, 6)  # still shaped right: the dangerous kind
        assert bad.basic != basis.basic
        assert len(set(bad.basic)) == len(bad.basic)  # still a valid tuple


class TestPoisonStash:
    def test_replaces_every_entry_in_place(self) -> None:
        stash = BasisStash()
        basis = Basis(m=2, n=4, basic=(0, 1))
        stash.put("a", basis)
        stash.put("b", basis)
        assert poison_stash(stash) == 2
        assert stash.get("a") != basis
        assert stash.get("a").matches(2, 4)

    def test_empty_stash_poisons_nothing(self) -> None:
        assert poison_stash(BasisStash()) == 0
