"""Unit tests for the generic fallback-chain executor."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    FallbacksExhaustedError,
    InfeasibleInstanceError,
    SolverError,
    StageTimeoutError,
)
from repro.core.resilience import (
    ResilienceReport,
    RetryPolicy,
    SolveBudget,
    run_with_fallbacks,
)
from repro.testing import FakeClock


def _ok(value="answer"):
    return value


class TestHappyPath:
    def test_primary_success_records_one_clean_attempt(self):
        report = ResilienceReport()
        result = run_with_fallbacks(
            "lp", [("highs", lambda: _ok())], report=report
        )
        assert result == "answer"
        assert [a.outcome for a in report.attempts] == ["ok"]
        assert not report.degraded

    def test_no_candidates_is_a_usage_error(self):
        with pytest.raises(ValueError):
            run_with_fallbacks("lp", [], report=ResilienceReport())


class TestFallbacks:
    def test_failure_walks_to_the_next_candidate(self):
        report = ResilienceReport()

        def boom():
            raise SolverError("no", stage="lp", backend="highs")

        result = run_with_fallbacks(
            "lp",
            [("highs", boom), ("simplex", lambda: _ok("fallback"))],
            report=report,
        )
        assert result == "fallback"
        assert [a.outcome for a in report.attempts] == ["failed", "ok"]
        assert report.fallbacks == ["lp: highs -> simplex"]
        assert report.degraded

    def test_non_repro_crash_is_wrapped_and_survivable(self):
        report = ResilienceReport()

        def crash():
            raise ZeroDivisionError("backend blew up")

        result = run_with_fallbacks(
            "lp", [("highs", crash), ("simplex", _ok)], report=report
        )
        assert result == "answer"
        assert "ZeroDivisionError" in report.attempts[0].error

    def test_exhaustion_raises_with_full_attempt_history(self):
        report = ResilienceReport()

        def boom():
            raise SolverError("no")

        with pytest.raises(FallbacksExhaustedError) as exc_info:
            run_with_fallbacks(
                "lp", [("highs", boom), ("simplex", boom)], report=report
            )
        err = exc_info.value
        assert err.stage == "lp"
        assert len(err.attempts) == 2
        assert isinstance(err.last_error, SolverError)

    def test_infeasible_instance_propagates_immediately(self):
        report = ResilienceReport()

        def infeasible():
            raise InfeasibleInstanceError("no schedule exists")

        never_called = []
        with pytest.raises(InfeasibleInstanceError):
            run_with_fallbacks(
                "lp",
                [
                    ("highs", infeasible),
                    ("simplex", lambda: never_called.append(1)),
                ],
                report=report,
            )
        assert never_called == []  # a second backend cannot help


class TestStrictSingleShot:
    def test_single_candidate_reraises_the_original_error(self):
        original = StageTimeoutError("slow", stage="lp", backend="highs")

        def boom():
            raise original

        with pytest.raises(StageTimeoutError) as exc_info:
            run_with_fallbacks(
                "lp", [("highs", boom)], report=ResilienceReport()
            )
        assert exc_info.value is original  # identity, not a re-wrap

    def test_single_candidate_still_records_the_attempt(self):
        report = ResilienceReport()
        with pytest.raises(SolverError):
            run_with_fallbacks(
                "lp",
                [("highs", lambda: (_ for _ in ()).throw(SolverError("no")))],
                report=report,
            )
        assert [a.outcome for a in report.attempts] == ["failed"]


class TestRetries:
    def test_transient_failure_recovers_on_retry(self):
        report = ResilienceReport()
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] == 1:
                raise SolverError("transient")
            return "recovered"

        result = run_with_fallbacks(
            "lp",
            [("highs", flaky)],
            report=report,
            retry=RetryPolicy(attempts=2),
        )
        assert result == "recovered"
        assert [(a.outcome, a.attempt) for a in report.attempts] == [
            ("failed", 1),
            ("ok", 2),
        ]
        assert report.num_retries == 1
        assert not report.degraded  # same backend, so not a fallback

    def test_backoff_sleeps_between_retries_only(self):
        naps: list[float] = []

        def boom():
            raise SolverError("no")

        with pytest.raises(FallbacksExhaustedError):
            run_with_fallbacks(
                "lp",
                [("highs", boom), ("simplex", boom)],
                report=ResilienceReport(),
                retry=RetryPolicy(attempts=2, backoff=0.25, sleep=naps.append),
            )
        # One backoff nap per candidate's second attempt.
        assert naps == [0.25, 0.25]


class TestValidation:
    def test_garbage_result_falls_through_to_next_candidate(self):
        report = ResilienceReport()

        def validate(result):
            if result == "garbage":
                raise SolverError("does not cover the jobs")

        result = run_with_fallbacks(
            "lp",
            [("highs", lambda: "garbage"), ("simplex", _ok)],
            report=report,
            validate=validate,
        )
        assert result == "answer"
        assert [a.outcome for a in report.attempts] == ["invalid", "ok"]

    def test_validator_crash_counts_as_invalid(self):
        report = ResilienceReport()

        def validate(result):
            raise TypeError("garbage broke the validator itself")

        def boom():
            raise SolverError("also bad")

        with pytest.raises(FallbacksExhaustedError):
            run_with_fallbacks(
                "lp",
                [("highs", lambda: object()), ("simplex", boom)],
                report=report,
                validate=validate,
            )
        assert report.attempts[0].outcome == "invalid"
        assert "TypeError" in report.attempts[0].error


class TestBudgetInteraction:
    def test_expired_budget_stops_the_chain_before_trying(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=1.0, clock=clock).start()
        clock.advance(2.0)
        called = []
        with pytest.raises(StageTimeoutError):
            run_with_fallbacks(
                "lp",
                [("highs", lambda: called.append(1))],
                report=ResilienceReport(),
                budget=budget,
            )
        assert called == []

    def test_real_deadline_timeout_is_not_swallowed_by_fallbacks(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=1.0, clock=clock).start()

        def slow():
            clock.advance(5.0)  # the "work" blows the global deadline
            raise StageTimeoutError("deadline", stage="lp", backend="highs")

        called = []
        with pytest.raises(StageTimeoutError):
            run_with_fallbacks(
                "lp",
                [("highs", slow), ("simplex", lambda: called.append(1))],
                report=ResilienceReport(),
                budget=budget,
            )
        assert called == []  # no point running simplex with no time left

    def test_simulated_timeout_with_time_remaining_falls_back(self):
        # A StageTimeoutError raised while the global budget still has time
        # (e.g. a per-stage cap, or an injected fault) is a candidate
        # failure, not the end of the solve.
        clock = FakeClock()
        budget = SolveBudget(wall_clock=100.0, clock=clock).start()

        def fake_timeout():
            raise StageTimeoutError("stage cap", stage="lp", backend="highs")

        report = ResilienceReport()
        result = run_with_fallbacks(
            "lp",
            [("highs", fake_timeout), ("simplex", _ok)],
            report=report,
            budget=budget,
        )
        assert result == "answer"
        assert report.attempts[0].outcome == "timeout"
        assert report.fallbacks == ["lp: highs -> simplex"]
