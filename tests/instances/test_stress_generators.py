"""Tests for the stress generator families (rigid, staircase, heavy-tail)."""

from __future__ import annotations

import pytest

from repro import solve_ise
from repro.core import validate_ise
from repro.instances import (
    heavy_tail_instance,
    rigid_instance,
    staircase_instance,
)

FAMILIES = {
    "rigid": rigid_instance,
    "staircase": staircase_instance,
    "heavy_tail": heavy_tail_instance,
}


class TestWitnesses:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", range(3))
    def test_witness_feasible(self, family, seed):
        gen = FAMILIES[family](14, 2, 10.0, seed)
        report = validate_ise(gen.instance, gen.witness)
        assert report.ok, f"{family}/{seed}: {report.summary()}"

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_deterministic(self, family):
        a = FAMILIES[family](10, 2, 10.0, 9)
        b = FAMILIES[family](10, 2, 10.0, 9)
        assert a.instance.jobs == b.instance.jobs


class TestShapes:
    def test_rigid_all_zero_slack(self):
        gen = rigid_instance(12, 2, 10.0, 0)
        for job in gen.instance.jobs:
            assert job.slack == pytest.approx(0.0)
            assert not job.is_long(10.0)

    def test_staircase_all_long_and_overlapping(self):
        gen = staircase_instance(10, 2, 10.0, 0)
        jobs = sorted(gen.instance.jobs, key=lambda j: j.release)
        for job in jobs:
            assert job.is_long(10.0)
        # Consecutive windows overlap (the chain structure).
        overlaps = sum(
            1
            for a, b in zip(jobs, jobs[1:])
            if b.release < a.deadline - 1e-9
        )
        assert overlaps >= len(jobs) // 2

    def test_heavy_tail_has_both_small_and_large(self):
        gen = heavy_tail_instance(40, 2, 10.0, 1)
        procs = sorted(j.processing for j in gen.instance.jobs)
        assert procs[0] < 0.15 * 10.0       # tiny jobs exist
        assert procs[-1] > 0.5 * 10.0       # near-calibration-size too


class TestSolvable:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", range(2))
    def test_combined_solver_handles_family(self, family, seed):
        gen = FAMILIES[family](14, 2, 10.0, seed)
        result = solve_ise(gen.instance)
        report = validate_ise(gen.instance, result.schedule)
        assert report.ok, f"{family}/{seed}: {report.summary()}"
        assert result.num_calibrations >= result.lower_bound.best - 1e-6
