"""Tests for the feasible-by-construction generators."""

from __future__ import annotations

import pytest

from repro.core import validate_ise
from repro.instances import (
    clustered_instance,
    long_window_instance,
    mixed_instance,
    partition_instance,
    short_window_instance,
    unit_instance,
)


GENERATORS = {
    "long": lambda seed: long_window_instance(15, 2, 10.0, seed),
    "short": lambda seed: short_window_instance(15, 2, 10.0, seed),
    "mixed": lambda seed: mixed_instance(15, 2, 10.0, seed),
    "unit": lambda seed: unit_instance(15, 2, 4, seed),
    "partition": lambda seed: partition_instance(5, seed),
    "clustered": lambda seed: clustered_instance(15, 2, 10.0, seed),
}


class TestWitnessFeasibility:
    @pytest.mark.parametrize("family", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", range(4))
    def test_witness_is_feasible(self, family, seed):
        """The core generator contract: the witness is a feasible ISE
        schedule of the instance on its stated machine count."""
        gen = GENERATORS[family](seed)
        report = validate_ise(gen.instance, gen.witness)
        assert report.ok, f"{family}/{seed}: {report.summary()}"
        assert gen.witness.num_machines == gen.instance.machines
        assert gen.family

    @pytest.mark.parametrize("family", sorted(GENERATORS))
    def test_determinism(self, family):
        a = GENERATORS[family](7)
        b = GENERATORS[family](7)
        assert a.instance.jobs == b.instance.jobs
        assert a.witness.placements == b.witness.placements


class TestWindowShapes:
    @pytest.mark.parametrize("seed", range(4))
    def test_long_family_all_long(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        for job in gen.instance.jobs:
            assert job.window >= 2 * 10.0 - 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_short_family_all_short(self, seed):
        gen = short_window_instance(12, 2, 10.0, seed)
        for job in gen.instance.jobs:
            assert job.window < 2 * 10.0

    def test_mixed_family_has_both(self):
        gen = mixed_instance(40, 2, 10.0, seed=0, long_fraction=0.5)
        longs = [j for j in gen.instance.jobs if j.is_long(10.0)]
        shorts = [j for j in gen.instance.jobs if not j.is_long(10.0)]
        assert longs and shorts

    def test_short_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            short_window_instance(5, 1, 10.0, 0, max_window_factor=2.0)


class TestUnitFamily:
    @pytest.mark.parametrize("seed", range(3))
    def test_integrality(self, seed):
        gen = unit_instance(10, 2, 3, seed)
        for job in gen.instance.jobs:
            assert job.processing == 1.0
            assert job.release == int(job.release)
            assert job.deadline == int(job.deadline)

    def test_small_T_rejected(self):
        with pytest.raises(ValueError):
            unit_instance(5, 1, 1, 0)


class TestPartitionFamily:
    @pytest.mark.parametrize("seed", range(3))
    def test_structure(self, seed):
        gen = partition_instance(6, seed)
        inst = gen.instance
        assert inst.machines == 2
        total = inst.total_work
        assert inst.calibration_length == pytest.approx(total / 2)
        for job in inst.jobs:
            assert job.release == 0.0
            assert job.deadline == pytest.approx(inst.calibration_length)
        # Exactly two calibrations in the witness: one per machine at t=0.
        assert gen.witness.num_calibrations == 2

    def test_all_jobs_short(self):
        gen = partition_instance(4, 1)
        for job in gen.instance.jobs:
            assert not job.is_long(gen.instance.calibration_length)


class TestClusteredFamily:
    def test_has_gaps_between_clusters(self):
        gen = clustered_instance(
            18, 2, 10.0, seed=1, num_clusters=3, intercluster_gap_factor=6.0
        )
        starts = sorted(c.start for c in gen.witness.calibrations)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        # At least one inter-cluster gap larger than 3T.
        assert any(g > 3 * 10.0 for g in gaps)

    def test_job_count_exact(self):
        gen = clustered_instance(17, 2, 10.0, seed=2, num_clusters=3)
        assert gen.instance.n == 17
