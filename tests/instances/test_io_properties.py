"""Property-based round-trip tests for the JSON serialization layer."""

from __future__ import annotations

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Instance
from repro.instances import (
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from tests.conftest import instance_strategy


@given(instance_strategy(max_jobs=10))
@settings(max_examples=30)
def test_instance_round_trip_exact(inst: Instance):
    """to_dict -> from_dict is the identity on jobs, m, and T."""
    back = instance_from_dict(instance_to_dict(inst))
    assert back.jobs == inst.jobs
    assert back.machines == inst.machines
    assert back.calibration_length == inst.calibration_length


@given(instance_strategy(max_jobs=8))
@settings(max_examples=20)
def test_instance_round_trip_through_json_text(inst: Instance):
    """Surviving an actual JSON encode/decode (float precision included)."""
    payload = json.loads(json.dumps(instance_to_dict(inst)))
    back = instance_from_dict(payload)
    assert back.jobs == inst.jobs


@given(seed=st.integers(0, 5000), n=st.integers(1, 10))
@settings(max_examples=20, deadline=None)
def test_schedule_round_trip_from_generators(seed, n):
    from repro.instances import mixed_instance

    gen = mixed_instance(n, 2, 10.0, seed)
    payload = json.loads(json.dumps(schedule_to_dict(gen.witness)))
    back = schedule_from_dict(payload)
    assert back.placements == gen.witness.placements
    assert (
        back.calibrations.calibrations == gen.witness.calibrations.calibrations
    )
    assert back.calibrations.num_machines == gen.witness.calibrations.num_machines
