"""Round-trip tests for JSON instance/schedule serialization."""

from __future__ import annotations

import json

import pytest

from repro.core import CorruptArtifactError, InvalidArtifactError, ReproError
from repro.instances import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    long_window_instance,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


@pytest.fixture
def generated():
    return long_window_instance(n=8, machines=2, calibration_length=10.0, seed=0)


class TestInstanceRoundTrip:
    def test_dict_round_trip(self, generated):
        payload = instance_to_dict(generated.instance)
        back = instance_from_dict(payload)
        assert back.jobs == generated.instance.jobs
        assert back.machines == generated.instance.machines
        assert back.calibration_length == generated.instance.calibration_length
        assert back.name == generated.instance.name

    def test_file_round_trip(self, generated, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(generated.instance, path)
        back = load_instance(path)
        assert back.jobs == generated.instance.jobs

    def test_wrong_kind_rejected(self, generated):
        payload = instance_to_dict(generated.instance)
        payload["kind"] = "something-else"
        with pytest.raises(ReproError):
            instance_from_dict(payload)

    def test_wrong_version_rejected(self, generated):
        payload = instance_to_dict(generated.instance)
        payload["version"] = 99
        with pytest.raises(ReproError):
            instance_from_dict(payload)


class TestScheduleRoundTrip:
    def test_dict_round_trip(self, generated):
        payload = schedule_to_dict(generated.witness)
        back = schedule_from_dict(payload)
        assert back.placements == generated.witness.placements
        assert back.calibrations.calibrations == generated.witness.calibrations.calibrations
        assert back.speed == generated.witness.speed

    def test_file_round_trip(self, generated, tmp_path):
        path = tmp_path / "sched.json"
        save_schedule(generated.witness, path)
        back = load_schedule(path)
        assert back.placements == generated.witness.placements

    def test_speed_preserved(self, generated):
        from repro.core import Schedule

        fast = Schedule(
            calibrations=generated.witness.calibrations,
            placements=generated.witness.placements,
            speed=4.0,
        )
        back = schedule_from_dict(schedule_to_dict(fast))
        assert back.speed == 4.0

    def test_wrong_kind_rejected(self, generated):
        payload = schedule_to_dict(generated.witness)
        payload["kind"] = "nope"
        with pytest.raises(ReproError):
            schedule_from_dict(payload)


class TestScheduleCertificate:
    @pytest.fixture
    def certified(self, generated):
        from repro.core import certify_result
        from repro.core.solver import ISEConfig, solve_ise

        result = solve_ise(generated.instance, ISEConfig(verify=True))
        return result, certify_result(generated.instance, result)

    def test_round_trip_through_envelope(self, certified, tmp_path):
        from repro.instances import load_schedule_certificate

        result, cert = certified
        path = tmp_path / "sched.json"
        save_schedule(result.schedule, path, certificate=cert)
        assert load_schedule(path).placements == result.schedule.placements
        assert load_schedule_certificate(path) == cert

    def test_no_certificate_loads_none(self, generated, tmp_path):
        from repro.instances import load_schedule_certificate

        path = tmp_path / "plain.json"
        save_schedule(generated.witness, path)
        assert load_schedule_certificate(path) is None

    def test_tampered_certificate_rejected(self, certified, tmp_path):
        from repro.instances import load_schedule_certificate

        result, cert = certified
        path = tmp_path / "sched.json"
        save_schedule(result.schedule, path, certificate=cert)
        envelope = json.loads(path.read_text())
        envelope["payload"]["certificate"]["valid"] = not cert.valid
        # Keep the *envelope* checksum honest so only the certificate's
        # own self-checksum stands between the tamper and the caller.
        import repro.core.atomicio as atomicio

        canonical = json.dumps(
            envelope["payload"], sort_keys=True, separators=(",", ":")
        )
        envelope["checksum"] = atomicio.checksum(canonical)
        path.write_text(json.dumps(envelope))
        with pytest.raises(InvalidArtifactError, match="checksum"):
            load_schedule_certificate(path)


class TestTypedArtifactErrors:
    """Malformed payloads raise :class:`InvalidArtifactError` carrying the
    offending path and field — never a raw ``KeyError`` or
    ``json.JSONDecodeError``."""

    def test_truncated_file(self, generated, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(generated.instance, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(CorruptArtifactError) as info:
            load_instance(path)
        assert info.value.path == str(path)

    def test_missing_field_names_the_field(self, generated, tmp_path):
        payload = instance_to_dict(generated.instance)
        del payload["jobs"][0]["release"]
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(InvalidArtifactError) as info:
            load_instance(path)
        assert info.value.field == "jobs[0].release"
        assert info.value.path == str(path)

    def test_missing_toplevel_field(self, generated, tmp_path):
        payload = instance_to_dict(generated.instance)
        del payload["machines"]
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(InvalidArtifactError) as info:
            load_instance(path)
        assert info.value.field == "machines"

    def test_nan_payload_rejected(self, generated, tmp_path):
        payload = instance_to_dict(generated.instance)
        payload["jobs"][1]["deadline"] = float("nan")
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(payload))  # json emits bare NaN
        with pytest.raises(InvalidArtifactError) as info:
            load_instance(path)
        assert info.value.field == "jobs[1].deadline"

    def test_non_numeric_field_rejected(self, generated):
        payload = instance_to_dict(generated.instance)
        payload["calibration_length"] = "soon"
        with pytest.raises(InvalidArtifactError) as info:
            instance_from_dict(payload)
        assert info.value.field == "calibration_length"

    def test_schedule_missing_placement_field(self, generated, tmp_path):
        payload = schedule_to_dict(generated.witness)
        del payload["placements"][0]["job"]
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(InvalidArtifactError) as info:
            load_schedule(path)
        assert info.value.field == "placements[0].job"
        assert info.value.path == str(path)

    def test_invalid_artifact_error_is_a_value_error(self):
        # so pre-existing `except ValueError` call sites keep working
        assert issubclass(InvalidArtifactError, ValueError)

    def test_error_message_carries_context(self, generated, tmp_path):
        payload = instance_to_dict(generated.instance)
        del payload["machines"]
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(InvalidArtifactError) as info:
            load_instance(path)
        rendered = str(info.value)
        assert "machines" in rendered
        assert str(path) in rendered
