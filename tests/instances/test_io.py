"""Round-trip tests for JSON instance/schedule serialization."""

from __future__ import annotations

import pytest

from repro.core import ReproError
from repro.instances import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    long_window_instance,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


@pytest.fixture
def generated():
    return long_window_instance(n=8, machines=2, calibration_length=10.0, seed=0)


class TestInstanceRoundTrip:
    def test_dict_round_trip(self, generated):
        payload = instance_to_dict(generated.instance)
        back = instance_from_dict(payload)
        assert back.jobs == generated.instance.jobs
        assert back.machines == generated.instance.machines
        assert back.calibration_length == generated.instance.calibration_length
        assert back.name == generated.instance.name

    def test_file_round_trip(self, generated, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(generated.instance, path)
        back = load_instance(path)
        assert back.jobs == generated.instance.jobs

    def test_wrong_kind_rejected(self, generated):
        payload = instance_to_dict(generated.instance)
        payload["kind"] = "something-else"
        with pytest.raises(ReproError):
            instance_from_dict(payload)

    def test_wrong_version_rejected(self, generated):
        payload = instance_to_dict(generated.instance)
        payload["version"] = 99
        with pytest.raises(ReproError):
            instance_from_dict(payload)


class TestScheduleRoundTrip:
    def test_dict_round_trip(self, generated):
        payload = schedule_to_dict(generated.witness)
        back = schedule_from_dict(payload)
        assert back.placements == generated.witness.placements
        assert back.calibrations.calibrations == generated.witness.calibrations.calibrations
        assert back.speed == generated.witness.speed

    def test_file_round_trip(self, generated, tmp_path):
        path = tmp_path / "sched.json"
        save_schedule(generated.witness, path)
        back = load_schedule(path)
        assert back.placements == generated.witness.placements

    def test_speed_preserved(self, generated):
        from repro.core import Schedule

        fast = Schedule(
            calibrations=generated.witness.calibrations,
            placements=generated.witness.placements,
            speed=4.0,
        )
        back = schedule_from_dict(schedule_to_dict(fast))
        assert back.speed == 4.0

    def test_wrong_kind_rejected(self, generated):
        payload = schedule_to_dict(generated.witness)
        payload["kind"] = "nope"
        with pytest.raises(ReproError):
            schedule_from_dict(payload)
