"""Tests that the reconstructed paper figures have the documented anchors."""

from __future__ import annotations

import pytest

from repro.core import validate_ise
from repro.instances import (
    FIGURE_T,
    figure1_instance,
    figure2_fractional_calibrations,
    figure3_inputs,
)
from repro.longwindow.tise import tise_feasible_for


class TestFigure1:
    def test_schedule_is_feasible_on_one_machine(self):
        instance, schedule = figure1_instance()
        assert instance.machines == 1
        assert schedule.num_machines == 1
        assert schedule.num_calibrations == 3
        report = validate_ise(instance, schedule)
        assert report.ok, report.summary()

    def test_all_jobs_long(self):
        instance, _ = figure1_instance()
        for job in instance.jobs:
            assert job.is_long(FIGURE_T)

    def test_seven_jobs_with_paper_ids(self):
        instance, _ = figure1_instance()
        assert sorted(j.job_id for j in instance.jobs) == list(range(1, 8))

    def test_advance_delay_preconditions(self):
        """Jobs 1 and 5 have deadlines inside their calibrations; job 7 has
        its release inside its calibration — the caption's three moves."""
        instance, schedule = figure1_instance()
        jm = instance.job_map()
        for jid, cal_start in ((1, 0.0), (5, 10.0)):
            assert jm[jid].deadline < cal_start + FIGURE_T
        assert jm[7].release > 20.0


class TestFigure2:
    def test_masses_and_running_total(self):
        masses = figure2_fractional_calibrations()
        values = [masses[t] for t in sorted(masses)]
        assert values == [0.30, 0.25, 0.20, 0.80]
        running = []
        acc = 0.0
        for v in values:
            acc += v
            running.append(acc)
        # Crossings of 0.5 happen at the 2nd point; of 1.0 and 1.5 at the 4th.
        assert running[0] < 0.5 <= running[1]
        assert running[2] < 1.0 <= running[3]
        assert running[3] >= 1.5


class TestFigure3:
    def test_constraints_2_3_5_hold(self):
        jobs, calibrations, assignments = figure3_inputs()
        T = FIGURE_T
        jm = {j.job_id: j for j in jobs}
        for (jid, t), x in assignments.items():
            assert x <= calibrations[t] + 1e-9, "constraint (2)"
            assert tise_feasible_for(jm[jid], t, T), "constraint (5)"
        for t, c in calibrations.items():
            load = sum(
                x * jm[jid].processing
                for (jid, tt), x in assignments.items()
                if tt == t
            )
            assert load <= c * T + 1e-9, "constraint (3)"

    def test_job2_partially_assigned_as_documented(self):
        jobs, _, assignments = figure3_inputs()
        total = sum(x for (jid, _), x in assignments.items() if jid == 2)
        assert total == pytest.approx(0.75)
