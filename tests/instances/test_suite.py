"""Tests for the named benchmark presets."""

from __future__ import annotations

import pytest

from repro.analysis import run_sweep
from repro.instances import PRESETS, preset_cases


class TestPresets:
    def test_names(self):
        assert set(PRESETS) == {"smoke", "standard", "large"}

    def test_preset_cases_copies(self):
        a = preset_cases("smoke")
        a.clear()
        assert preset_cases("smoke")  # the stored preset is untouched

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset_cases("gigantic")

    def test_all_cases_generate(self):
        for name in PRESETS:
            for case in preset_cases(name)[:4]:
                generated = case.generate()
                assert generated.instance.n == case.n

    def test_smoke_preset_runs_clean(self):
        outcomes = run_sweep(preset_cases("smoke"))
        assert outcomes and all(o.valid for o in outcomes)

    def test_cli_preset(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--preset", "smoke"])
        assert code == 0
        assert "sweep preset: smoke" in capsys.readouterr().out
