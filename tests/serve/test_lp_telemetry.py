"""Serve-layer LP telemetry: warm-start stashes and /stats counters.

Each worker thread owns a private :class:`~repro.lp.BasisStash` (no
cross-thread lock contention on the solve path); repeat solves of the same
instance on the same worker hit that stash and must return the identical
schedule.  ``stats_snapshot`` surfaces the aggregate counters the HTTP
``/stats`` endpoint serves.
"""

from __future__ import annotations

from repro.core.solver import ISEConfig
from repro.instances import long_window_instance
from repro.serve import ServiceConfig, SolveService


def _instance(seed: int = 5):
    return long_window_instance(n=8, machines=2, calibration_length=10.0, seed=seed).instance


def _service(**overrides) -> SolveService:
    config = ServiceConfig(
        workers=1,
        queue_capacity=4,
        solver=ISEConfig(lp_backend="simplex"),
        **overrides,
    )
    return SolveService(config)


def test_repeat_solves_hit_the_worker_stash() -> None:
    instance = _instance()
    service = _service().start()
    try:
        first = service.solve(instance, timeout=30.0)
        second = service.solve(instance, timeout=30.0)
        assert first.result.schedule == second.result.schedule
        snap = service.stats_snapshot()
        assert snap["counters"]["lp_solves"] == 2
        assert snap["counters"]["lp_warm_solves"] == 1
        assert snap["counters"]["lp_iterations"] > 0
        stash = snap["lp_basis_stash"]
        assert stash["stashes"] == 1
        assert stash["entries"] >= 1
        assert stash["hits"] == 1
    finally:
        service.shutdown()


def test_warm_start_disabled_keeps_counters_but_no_stash() -> None:
    instance = _instance()
    service = _service(lp_warm_start=False).start()
    try:
        service.solve(instance, timeout=30.0)
        service.solve(instance, timeout=30.0)
        snap = service.stats_snapshot()
        assert snap["counters"]["lp_solves"] == 2
        assert snap["counters"]["lp_warm_solves"] == 0
        assert snap["lp_basis_stash"]["stashes"] == 0
    finally:
        service.shutdown()


def test_fake_solve_fn_results_do_not_break_telemetry() -> None:
    """Chaos tests inject arbitrary solve_fn results; the telemetry scan
    must tolerate objects with no resilience report."""
    config = ServiceConfig(workers=1, queue_capacity=4)
    service = SolveService(config, solve_fn=lambda inst, cfg: "answer").start()
    try:
        outcome = service.solve(_instance(), timeout=30.0)
        assert outcome.result == "answer"
        snap = service.stats_snapshot()
        assert snap["counters"]["lp_solves"] == 0
        assert snap["counters"]["completed"] == 1
    finally:
        service.shutdown()
