"""Chaos tests: the full service under misbehaving backends and load.

Three acceptance scenarios from the serve milestone:

* a failing/stalling MM backend trips its circuit breaker and later
  requests are routed around it (``skipped`` attempts, not repeated
  failures) while every solve still succeeds within its deadline;
* a thundering herd against a tiny queue yields *typed* rejections
  (:class:`OverloadError`) and zero crashes, and the service stays
  healthy afterwards;
* the CLI process drains cleanly on SIGTERM — in-flight work completes,
  the exit code is 0, and the drain summary says so.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.core import OverloadError
from repro.core.solver import ISEConfig
from repro.core.validate import check_ise
from repro.instances import instance_to_dict, mixed_instance, short_window_instance
from repro.serve import ServiceConfig, SolveService
from repro.testing.faults import FaultPlan, inject_mm_fault

REPO_ROOT = Path(__file__).resolve().parents[2]


def _short(seed: int):
    return short_window_instance(
        n=8, machines=2, calibration_length=10.0, seed=seed
    ).instance


@pytest.mark.parametrize("kind", ["fail", "timeout"])
def test_bad_backend_trips_breaker_and_is_routed_around(kind: str) -> None:
    """After the threshold, the service stops even *trying* the bad backend."""
    config = ServiceConfig(
        workers=1,
        queue_capacity=16,
        breaker_failure_threshold=2,
        default_deadline=30.0,
    )
    service = SolveService(config).start()
    try:
        with inject_mm_fault("best_greedy", FaultPlan(kind)) as plan:
            outcomes = [
                service.solve(_short(seed), timeout=60.0) for seed in range(4)
            ]
        # Every request succeeded (routed to the fallback) within deadline.
        for seed, outcome in enumerate(outcomes):
            check_ise(_short(seed), outcome.result.schedule, context="chaos")
        assert service.breakers.states()["mm:best_greedy"] == "open"
        # The last solves skipped the dead backend instead of re-failing it:
        # the faulty wrapper was reached exactly failure_threshold times.
        assert plan.calls == config.breaker_failure_threshold
        last = outcomes[-1].result.resilience
        assert last is not None
        assert any(
            a.stage == "mm" and a.backend == "best_greedy" and a.outcome == "skipped"
            for a in last.attempts
        ), [a.outcome for a in last.attempts]
        # The fallback backend is still lit, so the service stays ready.
        assert service.ready
    finally:
        service.shutdown()


def test_breaker_probe_recovers_after_the_fault_clears() -> None:
    """Once the reset timeout passes, one probe succeeds and closes the breaker."""
    from repro.testing.faults import FakeClock

    clock = FakeClock()
    config = ServiceConfig(
        workers=1,
        queue_capacity=16,
        breaker_failure_threshold=1,
        breaker_reset_timeout=5.0,
    )
    service = SolveService(config, clock=clock).start()
    try:
        with inject_mm_fault("best_greedy", FaultPlan("fail")):
            service.solve(_short(0), timeout=60.0)
        assert service.breakers.states()["mm:best_greedy"] == "open"
        clock.advance(5.0)  # fault is gone; the probe should succeed
        outcome = service.solve(_short(1), timeout=60.0)
        assert not outcome.result.degraded
        assert service.breakers.states()["mm:best_greedy"] == "closed"
    finally:
        service.shutdown()


def test_concurrent_overload_yields_only_typed_rejections() -> None:
    """A herd against a tiny queue: OverloadError or success, nothing else."""
    gate = threading.Event()

    def slow(instance: object, config: ISEConfig) -> str:
        gate.wait(timeout=30.0)
        return "done"

    service = SolveService(
        ServiceConfig(workers=1, queue_capacity=2), solve_fn=slow
    ).start()
    outcomes: list[str] = []
    lock = threading.Lock()

    def hammer() -> None:
        try:
            service.solve(_short(0), timeout=30.0)
            label = "ok"
        except OverloadError:
            label = "overload"
        except BaseException as exc:  # pragma: no cover - the failure we hunt
            label = f"CRASH:{type(exc).__name__}"
        with lock:
            outcomes.append(label)

    threads = [threading.Thread(target=hammer) for _ in range(12)]
    try:
        for thread in threads:
            thread.start()
        # Let the herd pile up against the full queue before opening the gate.
        deadline = 100
        while service.stats.get("rejected_overload") == 0 and deadline:
            threading.Event().wait(0.02)
            deadline -= 1
        gate.set()
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(outcomes) == 12
        assert not [o for o in outcomes if o.startswith("CRASH")], outcomes
        assert outcomes.count("overload") >= 1
        assert outcomes.count("ok") + outcomes.count("overload") == 12
        assert service.stats.get("rejected_overload") == outcomes.count("overload")
        # The service is still healthy: a fresh request sails through.
        assert service.ready
        assert service.solve(_short(1), timeout=10.0).result == "done"
    finally:
        gate.set()
        service.shutdown()


# ---------------------------------------------------------------------------
# End-to-end: the CLI process under SIGTERM
# ---------------------------------------------------------------------------


def _post_solve(port: int, body: dict) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/solve",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status


@pytest.mark.skipif(os.name == "nt", reason="POSIX signals")
def test_cli_serve_drains_cleanly_on_sigterm() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--workers", "1"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert match, f"no listening banner, got: {banner!r}"
        port = int(match.group(1))

        body = {"instance": instance_to_dict(mixed_instance(8, 2, 10.0, 0).instance)}
        statuses: list[int] = []
        poster = threading.Thread(
            target=lambda: statuses.append(_post_solve(port, body))
        )
        poster.start()
        # Wait until the request is inside the service, then pull the plug.
        for _ in range(200):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/stats", timeout=10
            ) as response:
                stats = json.loads(response.read())
            if stats["counters"]["submitted"] >= 1:
                break
            threading.Event().wait(0.02)
        process.send_signal(signal.SIGTERM)

        poster.join(timeout=30.0)
        output, _ = process.communicate(timeout=30)
        # The in-flight request was answered, not dropped.
        assert statuses == [200], (statuses, output)
        assert process.returncode == 0, output
        assert "clean" in output and "UNCLEAN" not in output, output
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)


# ---------------------------------------------------------------------------
# Verified mode: corrupted results are repaired or quarantined, never served
# ---------------------------------------------------------------------------


def test_transient_corruption_is_repaired() -> None:
    """One corrupted solve: the cold re-solve passes and the client never sees it."""
    from repro.testing import inject_ise_corruption

    instance = mixed_instance(10, 2, 10.0, 0).instance
    service = SolveService(ServiceConfig(workers=1, verify_results=True)).start()
    try:
        with inject_ise_corruption(FaultPlan("garbage", at_calls=(1,))):
            outcome = service.solve(instance, timeout=60.0)
        check_ise(instance, outcome.result.schedule, context="repair")
        certificate = outcome.result.certificate
        assert certificate is not None and certificate.ok
        stats = service.stats.to_dict()
        assert stats["repaired"] == 1
        assert stats["verified"] == 1
        assert stats["quarantined"] == 0
    finally:
        service.shutdown()


def test_persistent_corruption_is_quarantined() -> None:
    """Every solve corrupted: typed error out, nothing invalid returned."""
    from repro.core import CertificationError
    from repro.testing import inject_ise_corruption

    instance = mixed_instance(10, 2, 10.0, 0).instance
    service = SolveService(ServiceConfig(workers=1, verify_results=True)).start()
    try:
        with inject_ise_corruption(FaultPlan("garbage")):
            with pytest.raises(CertificationError) as excinfo:
                service.solve(instance, timeout=60.0)
        assert excinfo.value.certificate is not None
        assert not excinfo.value.certificate.valid
        stats = service.stats.to_dict()
        assert stats["quarantined"] == 1
        assert stats["failed"] == 1
        assert stats["repaired"] == 0
        # The fault cleared; the service is healthy again.
        outcome = service.solve(instance, timeout=60.0)
        assert outcome.result.certificate.ok
        assert service.stats.get("verified") == 1
    finally:
        service.shutdown()


def test_http_client_never_receives_an_invalid_schedule() -> None:
    """End-to-end over HTTP: corruption turns into a 500 with the verdict,
    a clean request carries a passing certificate — never a bad schedule."""
    import urllib.error

    from repro.instances import schedule_from_dict
    from repro.serve import make_server
    from repro.testing import inject_ise_corruption

    instance = mixed_instance(10, 2, 10.0, 0).instance
    service = SolveService(ServiceConfig(workers=1, verify_results=True))
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        body = json.dumps(
            {"instance": instance_to_dict(instance), "include_schedule": True}
        ).encode()

        def post() -> tuple[int, dict]:
            request = urllib.request.Request(
                f"http://127.0.0.1:{httpd.port}/solve",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        with inject_ise_corruption(FaultPlan("garbage")):
            status, payload = post()
        assert status == 500
        assert "schedule" not in payload
        assert payload["certificate"]["valid"] is False

        status, payload = post()
        assert status == 200
        assert payload["certificate"]["valid"] is True
        check_ise(
            instance, schedule_from_dict(payload["schedule"]), context="http"
        )
    finally:
        httpd.shutdown()
        service.shutdown(drain_deadline=5.0)
        httpd.server_close()


def test_poisoned_stash_is_routed_around() -> None:
    """Scrambled bases in the warm-start stash cost repairs, not correctness."""
    from repro.lp import BasisStash
    from repro.testing import poison_stash

    from repro.instances import long_window_instance

    instance = long_window_instance(
        n=10, machines=2, calibration_length=10.0, seed=0
    ).instance
    stash = BasisStash()
    config = ISEConfig(
        lp_backend="simplex",
        lp_warm_start=True,
        lp_warm_stash=stash,
        verify=True,
    )

    first = ISEConfig(
        lp_backend="simplex", lp_warm_start=True, lp_warm_stash=stash
    )
    from repro.core.solver import solve_ise

    baseline = solve_ise(instance, first)
    assert len(stash) > 0
    poisoned = poison_stash(stash)
    assert poisoned > 0

    result = solve_ise(instance, config)
    check_ise(instance, result.schedule, context="poisoned-stash")
    assert result.certificate is not None and result.certificate.ok
    assert result.num_calibrations == baseline.num_calibrations
    # The poisoned bases were routed around (stale-point phase-1 fallback
    # or sentinel eviction) and overwritten with fresh ones: a further warm
    # solve replays cleanly and still certifies.
    again = solve_ise(instance, config)
    assert again.certificate is not None and again.certificate.ok
    assert again.num_calibrations == baseline.num_calibrations
