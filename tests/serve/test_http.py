"""The HTTP frontend: endpoints, status-code mapping, payload shapes."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from typing import Any, Iterator

import pytest

from repro.core import OverloadError, SolverError, StageTimeoutError
from repro.core.solver import ISEConfig
from repro.instances import instance_to_dict, mixed_instance, schedule_from_dict
from repro.serve import ServiceConfig, SolveService, make_server
from repro.core.validate import validate_ise


@pytest.fixture
def instance():
    return mixed_instance(8, 2, 10.0, 0).instance


@pytest.fixture
def server(instance) -> Iterator[Any]:
    """A real server on a free port, solving with the real pipeline."""
    service = SolveService(ServiceConfig(workers=2, queue_capacity=8))
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        service.shutdown(drain_deadline=5.0)
        httpd.server_close()


def _request(
    httpd: Any, path: str, body: dict[str, Any] | None = None
) -> tuple[int, dict[str, Any], dict[str, str]]:
    url = f"http://127.0.0.1:{httpd.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def test_healthz_is_always_ok(server) -> None:
    status, payload, _ = _request(server, "/healthz")
    assert (status, payload["status"]) == (200, "ok")


def test_readyz_when_running(server) -> None:
    status, payload, _ = _request(server, "/readyz")
    assert (status, payload["status"]) == (200, "ready")


def test_readyz_503_while_draining(server) -> None:
    server.service.shutdown(drain_deadline=1.0)
    status, payload, _ = _request(server, "/readyz")
    assert status == 503
    assert payload["reason"] == "draining"


def test_solve_round_trip(server, instance) -> None:
    status, payload, _ = _request(
        server,
        "/solve",
        {"instance": instance_to_dict(instance), "deadline": 30.0},
    )
    assert status == 200
    assert payload["num_calibrations"] >= 1
    assert payload["request_id"].startswith("req-")
    assert "schedule" not in payload


def test_solve_returns_validatable_schedule_when_asked(server, instance) -> None:
    status, payload, _ = _request(
        server,
        "/solve",
        {"instance": instance_to_dict(instance), "include_schedule": True},
    )
    assert status == 200
    schedule = schedule_from_dict(payload["schedule"])
    assert validate_ise(instance, schedule).ok


def test_envelope_wrapped_instance_is_accepted(server, instance) -> None:
    """CLI-generated artifact files can be posted verbatim."""
    wrapped = {
        "envelope": 1,
        "checksum": "sha256:unchecked-here",
        "payload": instance_to_dict(instance),
    }
    status, payload, _ = _request(server, "/solve", {"instance": wrapped})
    assert status == 200
    assert payload["num_calibrations"] >= 1


def test_malformed_json_is_400(server) -> None:
    url = f"http://127.0.0.1:{server.port}/solve"
    request = urllib.request.Request(url, data=b"{not json")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400


def test_missing_instance_key_is_400(server) -> None:
    status, payload, _ = _request(server, "/solve", {"deadline": 5.0})
    assert status == 400
    assert "instance" in payload["error"]


def test_invalid_instance_payload_is_400(server) -> None:
    status, _, _ = _request(server, "/solve", {"instance": {"kind": "nope"}})
    assert status == 400


def test_bad_deadline_type_is_400(server, instance) -> None:
    status, _, _ = _request(
        server,
        "/solve",
        {"instance": instance_to_dict(instance), "deadline": "soon"},
    )
    assert status == 400


def test_unknown_path_is_404(server) -> None:
    assert _request(server, "/nope")[0] == 404
    assert _request(server, "/nope", {})[0] == 404


def test_stats_shape(server, instance) -> None:
    _request(server, "/solve", {"instance": instance_to_dict(instance)})
    status, payload, _ = _request(server, "/stats")
    assert status == 200
    assert payload["counters"]["completed"] >= 1
    assert payload["queue"]["capacity"] == 8
    assert "breakers" in payload


def test_error_status_mapping() -> None:
    from repro.serve.http import _error_status
    from repro.core import InfeasibleInstanceError, ServiceShutdownError

    assert _error_status(OverloadError("full")) == 429
    assert _error_status(ServiceShutdownError("draining")) == 503
    assert _error_status(StageTimeoutError("late")) == 504
    assert _error_status(InfeasibleInstanceError("impossible")) == 422
    assert _error_status(SolverError("boom")) == 500


def test_overload_maps_to_429_with_retry_after(instance) -> None:
    """A saturated service answers 429 + Retry-After, not a hang."""
    gate = threading.Event()

    def blocking(inst: object, cfg: ISEConfig) -> str:
        gate.wait(timeout=30.0)
        # A typed failure keeps the HTTP layer on its 500 path; returning a
        # fake result would crash payload serialization instead.
        raise SolverError("released without a result")

    service = SolveService(
        ServiceConfig(workers=1, queue_capacity=1), solve_fn=blocking
    )
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        body = instance_to_dict(instance)
        # Saturate deterministically: admit one request and wait for the
        # worker to pick it up, THEN queue a second.  Sending both at once
        # races the worker's dequeue — under load the second request can
        # arrive while the first still occupies the depth-1 queue and be
        # 429-rejected, so saturation would never reach two.
        pending = []
        for occupied, filled in (
            ("in-flight slot", lambda: service.in_flight == 1),
            ("queue slot", lambda: service.queue.depth == 1),
        ):
            worker = threading.Thread(
                target=_request, args=(httpd, "/solve", {"instance": body})
            )
            worker.start()
            pending.append(worker)
            deadline = 600  # poll (up to 30 s) for this slot to fill
            while not filled() and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            assert filled(), f"never saturated: {occupied} not taken"
        status, payload, headers = _request(httpd, "/solve", {"instance": body})
        assert status == 429
        assert payload["error_type"] == "OverloadError"
        assert "Retry-After" in headers
        gate.set()
        for worker in pending:
            worker.join(timeout=30.0)
    finally:
        gate.set()
        httpd.shutdown()
        service.shutdown(drain_deadline=5.0)
        httpd.server_close()
