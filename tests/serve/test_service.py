"""Supervisor behavior: deadlines, shedding, drain — via the solve_fn seam.

These tests inject controllable solve functions (blocking gates, recorders)
so they exercise the *service* logic — admission, deadline bookkeeping,
load-shed policy selection, drain — without paying for real solves.  The
end-to-end solves against the real pipeline live in ``test_chaos_serve.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import OverloadError, ServiceShutdownError, StageTimeoutError
from repro.core.solver import ISEConfig
from repro.instances import mixed_instance
from repro.serve import ServiceConfig, SolveService
from repro.testing.faults import FakeClock


@pytest.fixture
def instance():
    return mixed_instance(6, 2, 10.0, 0).instance


class GatedSolve:
    """A solve_fn that blocks until released; records the configs it saw."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Event()
        self.configs: list[ISEConfig] = []
        self._lock = threading.Lock()

    def __call__(self, instance: object, config: ISEConfig) -> str:
        with self._lock:
            self.configs.append(config)
        self.started.set()
        if not self.release.wait(timeout=10.0):
            raise TimeoutError("test gate never released")
        return "solved"


def make_service(
    solve_fn,
    clock=None,
    **config_kwargs,
) -> SolveService:
    config = ServiceConfig(workers=1, queue_capacity=4, **config_kwargs)
    kwargs = {"solve_fn": solve_fn}
    if clock is not None:
        kwargs["clock"] = clock
    return SolveService(config, **kwargs)


def test_solve_happy_path(instance) -> None:
    service = make_service(lambda inst, cfg: "answer").start()
    try:
        outcome = service.solve(instance, deadline=10.0, timeout=10.0)
        assert outcome.result == "answer"
        assert not outcome.shed
        assert outcome.request_id
        assert service.stats.get("completed") == 1
    finally:
        service.shutdown()


def test_submit_before_start_is_rejected(instance) -> None:
    service = make_service(lambda inst, cfg: "answer")
    with pytest.raises(ServiceShutdownError):
        service.submit(instance)
    assert service.stats.get("rejected_shutdown") == 1


def test_nonpositive_deadline_rejected(instance) -> None:
    service = make_service(lambda inst, cfg: "answer").start()
    try:
        with pytest.raises(ValueError):
            service.submit(instance, deadline=0.0)
    finally:
        service.shutdown()


def test_max_deadline_caps_requests(instance) -> None:
    service = make_service(lambda inst, cfg: "x", max_deadline=5.0).start()
    try:
        request = service.submit(instance, deadline=60.0)
        assert request.deadline == 5.0
        assert request.future.result(timeout=10.0)
    finally:
        service.shutdown()


def test_overload_yields_typed_rejection(instance) -> None:
    gate = GatedSolve()
    service = make_service(gate).start()
    try:
        first = service.submit(instance)  # occupies the single worker
        gate.started.wait(timeout=10.0)
        queued = [service.submit(instance) for _ in range(4)]  # fills capacity
        with pytest.raises(OverloadError) as excinfo:
            service.submit(instance)
        assert excinfo.value.capacity == 4
        assert service.stats.get("rejected_overload") == 1
        gate.release.set()
        for request in [first, *queued]:
            assert request.future.result(timeout=10.0).result == "solved"
    finally:
        service.shutdown()


def test_queue_expired_deadline_fails_without_solving(instance) -> None:
    clock = FakeClock()
    gate = GatedSolve()
    service = make_service(gate, clock=clock).start()
    try:
        blocker = service.submit(instance, deadline=100.0)
        gate.started.wait(timeout=10.0)
        doomed = service.submit(instance, deadline=5.0)
        clock.advance(6.0)  # the 5s deadline dies while queued
        gate.release.set()
        blocker.future.result(timeout=10.0)
        with pytest.raises(StageTimeoutError, match="waiting in the queue"):
            doomed.future.result(timeout=10.0)
        assert service.stats.get("timed_out") == 1
        # The doomed request's config never reached the solver.
        assert len(gate.configs) == 1
    finally:
        service.shutdown()


def test_shedding_switches_to_cheap_policy(instance) -> None:
    gate = GatedSolve()
    config = ServiceConfig(
        workers=1,
        queue_capacity=4,
        high_watermark=2,
        low_watermark=1,
        solver=ISEConfig(strict=True),  # shed solves must still go non-strict
    )
    service = SolveService(config, solve_fn=gate)
    service.start()
    try:
        first = service.submit(instance)
        gate.started.wait(timeout=10.0)
        others = [service.submit(instance) for _ in range(3)]  # depth 3 >= 2
        assert service.queue.shedding
        gate.release.set()
        outcomes = [r.future.result(timeout=10.0) for r in [first, *others]]
        assert any(o.shed for o in outcomes)
        shed_configs = [c for c in gate.configs if not c.strict]
        assert shed_configs, "no request was solved under the shed policy"
        for cfg in shed_configs:
            assert cfg.mm_algorithm == config.shed_mm
            assert cfg.resilience is not None
            assert cfg.resilience.mm_chain == (config.shed_mm,)
        assert service.stats.get("shed_solves") >= 1
    finally:
        service.shutdown()


def test_request_policy_carries_gate_and_subbudget(instance) -> None:
    captured: list[ISEConfig] = []

    def recording(inst: object, cfg: ISEConfig) -> str:
        captured.append(cfg)
        return "ok"

    service = make_service(recording).start()
    try:
        service.solve(instance, deadline=30.0, timeout=10.0)
        (cfg,) = captured
        policy = cfg.resilience
        assert policy is not None
        assert policy.gate is service.breakers
        assert policy.budget is not None
        assert policy.budget.wall_clock is not None
        assert policy.budget.wall_clock <= 30.0  # queue wait already deducted
    finally:
        service.shutdown()


def test_solver_exception_propagates_typed(instance) -> None:
    def failing(inst: object, cfg: ISEConfig) -> str:
        raise RuntimeError("kaboom")

    service = make_service(failing).start()
    try:
        request = service.submit(instance)
        with pytest.raises(Exception, match="kaboom"):
            request.future.result(timeout=10.0)
        assert service.stats.get("failed") == 1
    finally:
        service.shutdown()


def test_shutdown_drains_in_flight_work(instance) -> None:
    gate = GatedSolve()
    service = make_service(gate).start()
    request = service.submit(instance)
    gate.started.wait(timeout=10.0)

    releaser = threading.Timer(0.1, gate.release.set)
    releaser.start()
    try:
        report = service.shutdown(drain_deadline=10.0)
    finally:
        releaser.cancel()
    assert report.clean
    assert report.drained == 1
    assert request.future.result(timeout=1.0).result == "solved"


def test_shutdown_abandons_queued_work_past_deadline(instance) -> None:
    gate = GatedSolve()
    service = make_service(gate).start()
    blocker = service.submit(instance)
    gate.started.wait(timeout=10.0)
    stranded = [service.submit(instance) for _ in range(2)]

    report = service.shutdown(drain_deadline=0.2)
    assert not report.clean
    assert report.abandoned_queued == 2
    for request in stranded:
        with pytest.raises(ServiceShutdownError, match="abandoned"):
            request.future.result(timeout=1.0)
    assert service.stats.get("abandoned") >= 2
    gate.release.set()  # let the daemon worker finish the blocker
    blocker.future.result(timeout=10.0)


def test_submit_while_draining_is_rejected(instance) -> None:
    service = make_service(lambda inst, cfg: "x").start()
    service.shutdown()
    with pytest.raises(ServiceShutdownError):
        service.submit(instance)


def test_ready_reflects_lifecycle(instance) -> None:
    service = make_service(lambda inst, cfg: "x")
    assert not service.ready  # not started
    service.start()
    assert service.ready
    service.shutdown()
    assert not service.ready  # draining/stopped


def test_ready_goes_dark_with_breakers(instance) -> None:
    service = make_service(lambda inst, cfg: "x").start()
    try:
        board = service.breakers
        for _ in range(service.config.breaker_failure_threshold):
            board.record_outcome("mm", "best_greedy", ok=False)
        assert board.dark()
        assert not service.ready
    finally:
        service.shutdown()


def test_stats_snapshot_shape(instance) -> None:
    service = make_service(lambda inst, cfg: "x").start()
    try:
        service.solve(instance, timeout=10.0)
        snap = service.stats_snapshot()
        assert snap["counters"]["completed"] == 1
        assert snap["queue"]["capacity"] == 4
        assert snap["workers"] == 1
        assert isinstance(snap["breakers"], dict)
    finally:
        service.shutdown()
