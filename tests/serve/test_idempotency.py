"""Idempotent ``request_id`` submission and the honest Retry-After estimate."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from typing import Any, Iterator

import pytest

from repro.instances import instance_to_dict, mixed_instance
from repro.serve import ServiceConfig, SolveService, make_server


@pytest.fixture
def instance():
    return mixed_instance(6, 2, 10.0, 0).instance


def _service(**kwargs) -> SolveService:
    defaults = dict(workers=1, queue_capacity=4)
    defaults.update(kwargs)
    return SolveService(ServiceConfig(**defaults)).start()


def test_duplicate_request_id_reuses_the_original_future(instance) -> None:
    service = _service()
    try:
        first, replayed_a = service.submit_idempotent(
            instance, request_id="client-1"
        )
        again, replayed_b = service.submit_idempotent(
            instance, request_id="client-1"
        )
        assert not replayed_a and replayed_b
        assert again is first  # same future, no second solve
        outcome = first.future.result(timeout=60)
        assert outcome.result.num_calibrations >= 1
        assert service.stats.to_dict()["idempotent_replays"] == 1
        assert service.stats.to_dict()["submitted"] == 1
    finally:
        service.shutdown(drain_deadline=10.0)


def test_no_request_id_means_no_caching(instance) -> None:
    service = _service()
    try:
        first, replayed_a = service.submit_idempotent(instance)
        second, replayed_b = service.submit_idempotent(instance)
        assert not replayed_a and not replayed_b
        assert second is not first
    finally:
        service.shutdown(drain_deadline=10.0)


def test_idempotency_lru_is_bounded(instance) -> None:
    service = _service(idempotency_capacity=2)
    try:
        for key in ("a", "b", "c"):  # "a" falls off the back
            service.submit_idempotent(instance, request_id=key)
        fresh, replayed = service.submit_idempotent(instance, request_id="a")
        assert not replayed
        _, replayed_c = service.submit_idempotent(instance, request_id="c")
        assert replayed_c
    finally:
        service.shutdown(drain_deadline=10.0)


def test_zero_capacity_disables_the_cache(instance) -> None:
    service = _service(idempotency_capacity=0)
    try:
        _, replayed_a = service.submit_idempotent(instance, request_id="x")
        _, replayed_b = service.submit_idempotent(instance, request_id="x")
        assert not replayed_a and not replayed_b
    finally:
        service.shutdown(drain_deadline=10.0)


def test_retry_after_reflects_backlog_and_observed_solve_time(
    instance,
) -> None:
    service = _service()
    try:
        # No history yet: the estimate falls back to 1 second.
        assert service.retry_after_estimate() == 1
        service.submit(instance).future.result(timeout=60)
        # Empty backlog: still the 1-second floor.
        assert service.retry_after_estimate() == 1
        # Pretend six requests are stacked behind slow 10s solves.
        with service._state_lock:
            service._avg_solve_seconds = 10.0
            for i in range(6):
                service._in_flight[f"fake-{i}"] = object()
        try:
            assert service.retry_after_estimate() == 60  # 6 backlog / 1 worker * 10s
        finally:
            with service._state_lock:
                for i in range(6):
                    service._in_flight.pop(f"fake-{i}")
        assert service.stats_snapshot()["retry_after"] == 1
    finally:
        service.shutdown(drain_deadline=10.0)


def test_http_solve_is_idempotent_under_request_id(instance) -> None:
    service = SolveService(ServiceConfig(workers=1, queue_capacity=4))
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        body = {"instance": instance_to_dict(instance), "request_id": "r-1"}
        url = f"http://127.0.0.1:{httpd.port}/solve"

        def post() -> dict[str, Any]:
            request = urllib.request.Request(
                url, data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())

        first, second = post(), post()
        assert not first["idempotent_replay"]
        assert second["idempotent_replay"]
        assert second["request_id"] == first["request_id"]
        assert second["num_calibrations"] == first["num_calibrations"]
        # bad request_id type is a 400, not a solve
        bad = dict(body, request_id=7)
        request = urllib.request.Request(
            url, data=json.dumps(bad).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=60)
        assert info.value.code == 400
    finally:
        httpd.shutdown()
        service.shutdown(drain_deadline=10.0)
        httpd.server_close()
