"""Unit tests for the bounded admission queue and its watermarks."""

from __future__ import annotations

import pytest

from repro.core.errors import OverloadError, ServiceShutdownError
from repro.serve import AdmissionQueue


def test_fifo_order() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(4)
    for item in (1, 2, 3):
        queue.put(item)
    assert [queue.get(timeout=0.0) for _ in range(3)] == [1, 2, 3]


def test_get_times_out_with_none() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(4)
    assert queue.get(timeout=0.01) is None


def test_full_queue_rejects_with_typed_overload() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(2)
    queue.put(1)
    queue.put(2)
    with pytest.raises(OverloadError) as excinfo:
        queue.put(3)
    assert excinfo.value.depth == 2
    assert excinfo.value.capacity == 2
    assert queue.rejected == 1
    assert queue.depth == 2  # the rejected item was never enqueued


def test_closed_queue_rejects_with_shutdown_error() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(2)
    queue.put(1)
    queue.close()
    with pytest.raises(ServiceShutdownError):
        queue.put(2)
    # Items admitted before the close are still drainable.
    assert queue.get(timeout=0.0) == 1


def test_close_is_idempotent() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(2)
    queue.close()
    queue.close()
    assert queue.closed


def test_watermark_hysteresis() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(
        8, high_watermark=6, low_watermark=2
    )
    for item in range(6):
        queue.put(item)
    assert queue.shedding  # crossed high
    queue.get(timeout=0.0)
    queue.get(timeout=0.0)
    queue.get(timeout=0.0)
    assert queue.shedding  # depth 3: between the watermarks, still shedding
    queue.get(timeout=0.0)
    assert not queue.shedding  # depth 2: reached low, cleared


def test_default_watermarks() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(64)
    assert queue.high_watermark == 48
    assert queue.low_watermark == 16


def test_invalid_watermarks_rejected() -> None:
    with pytest.raises(ValueError):
        AdmissionQueue(4, high_watermark=2, low_watermark=2)
    with pytest.raises(ValueError):
        AdmissionQueue(4, high_watermark=5, low_watermark=1)
    with pytest.raises(ValueError):
        AdmissionQueue(0)


def test_drain_remaining_empties_the_queue() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(4)
    for item in (1, 2, 3):
        queue.put(item)
    queue.close()
    assert queue.drain_remaining() == [1, 2, 3]
    assert queue.depth == 0


def test_peak_depth_tracks_high_water() -> None:
    queue: AdmissionQueue[int] = AdmissionQueue(4)
    queue.put(1)
    queue.put(2)
    queue.get(timeout=0.0)
    queue.put(3)
    assert queue.peak_depth == 2
