"""The circuit-breaker state machine, driven by a deterministic FakeClock."""

from __future__ import annotations

import pytest

from repro.serve import BreakerBoard, CircuitBreaker
from repro.testing.faults import FakeClock


def make_breaker(clock: FakeClock, **kwargs: object) -> CircuitBreaker:
    defaults = dict(failure_threshold=3, reset_timeout=30.0, half_open_trials=1)
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults)  # type: ignore[arg-type]


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self) -> None:
        breaker = make_breaker(FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow() is None

    def test_trips_after_consecutive_failures(self) -> None:
        breaker = make_breaker(FakeClock())
        breaker.record(ok=False)
        breaker.record(ok=False)
        assert breaker.state == "closed"  # threshold is 3
        breaker.record(ok=False)
        assert breaker.state == "open"
        reason = breaker.allow()
        assert reason is not None and "open" in reason
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self) -> None:
        breaker = make_breaker(FakeClock())
        breaker.record(ok=False)
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        breaker.record(ok=False)
        assert breaker.state == "closed"  # streak broken; never reached 3

    def test_half_open_after_reset_timeout(self) -> None:
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(ok=False)
        assert breaker.state == "open"
        clock.advance(29.0)
        assert breaker.state == "open"
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_half_open_admits_bounded_probes(self) -> None:
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(ok=False)
        clock.advance(30.0)
        assert breaker.allow() is None  # the one probe
        reason = breaker.allow()
        assert reason is not None and "half-open" in reason

    def test_probe_success_closes(self) -> None:
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(ok=False)
        clock.advance(30.0)
        assert breaker.allow() is None
        breaker.record(ok=True)
        assert breaker.state == "closed"
        assert breaker.allow() is None

    def test_probe_failure_reopens_for_a_full_timeout(self) -> None:
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(ok=False)
        clock.advance(30.0)
        assert breaker.allow() is None
        breaker.record(ok=False)  # the probe fails
        assert breaker.state == "open"
        assert breaker.times_opened == 2
        clock.advance(29.0)
        assert breaker.state == "open"  # a fresh full reset_timeout
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_invalid_tuning_rejected(self) -> None:
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), failure_threshold=0)
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), reset_timeout=0.0)
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), half_open_trials=0)

    def test_snapshot_is_json_ready(self) -> None:
        breaker = make_breaker(FakeClock())
        breaker.record(ok=False)
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert snap["failures"] == 1


class TestBreakerBoard:
    def test_implements_the_fallback_gate_protocol(self) -> None:
        from repro.core.resilience import FallbackGate

        board = BreakerBoard(clock=FakeClock())
        assert isinstance(board, FallbackGate)

    def test_per_backend_isolation(self) -> None:
        board = BreakerBoard(
            failure_threshold=2, reset_timeout=30.0, clock=FakeClock()
        )
        for _ in range(2):
            board.record_outcome("mm", "best_greedy", ok=False)
        assert board.allow("mm", "best_greedy") is not None
        assert board.allow("mm", "greedy_edf") is None  # untouched backend
        assert board.allow("lp", "best_greedy") is None  # same name, other stage

    def test_allow_reason_names_the_backend(self) -> None:
        board = BreakerBoard(failure_threshold=1, clock=FakeClock())
        board.record_outcome("mm", "best_greedy", ok=False)
        reason = board.allow("mm", "best_greedy")
        assert reason is not None
        assert "mm:best_greedy" in reason

    def test_dark_requires_every_known_breaker_open(self) -> None:
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, clock=clock)
        assert not board.dark()  # no traffic yet
        board.record_outcome("mm", "best_greedy", ok=False)
        assert board.dark()
        board.record_outcome("mm", "greedy_edf", ok=True)
        assert not board.dark()  # one backend still lit
        board.record_outcome("mm", "greedy_edf", ok=False)
        assert board.dark()
        assert board.dark(stage="mm")

    def test_snapshot_keys_are_stage_backend(self) -> None:
        board = BreakerBoard(clock=FakeClock())
        board.record_outcome("mm", "best_greedy", ok=True)
        board.record_outcome("lp", "highs", ok=True)
        assert sorted(board.snapshot()) == ["lp:highs", "mm:best_greedy"]
