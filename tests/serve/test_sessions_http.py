"""The ``/sessions`` routes: lifecycle, fencing, recovery across restarts."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Iterator

import pytest

from repro.serve import ServiceConfig, SessionManager, SolveService, make_server


@pytest.fixture
def server(tmp_path: Path) -> Iterator[Any]:
    service = SolveService(ServiceConfig(workers=1, queue_capacity=4))
    sessions = SessionManager(tmp_path / "sessions")
    httpd = make_server(service, port=0, sessions=sessions)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        service.shutdown(drain_deadline=5.0)
        httpd.server_close()


def _request(
    httpd: Any,
    path: str,
    body: dict[str, Any] | None = None,
    method: str | None = None,
) -> tuple[int, dict[str, Any]]:
    url = f"http://127.0.0.1:{httpd.port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


_CREATE = {"machines": 2, "calibration_length": 6.0, "commit_horizon": 1.0}


def test_session_lifecycle_over_http(server) -> None:
    status, created = _request(server, "/sessions", _CREATE)
    assert status == 201
    sid, fence = created["session_id"], created["fence"]
    assert fence >= 1

    status, receipt = _request(
        server,
        f"/sessions/{sid}/jobs",
        {
            "fence": fence,
            "job": {"id": 1, "release": 0.0, "deadline": 12.0, "processing": 4.0},
        },
    )
    assert status == 200
    assert receipt["job_id"] == 1 and not receipt["replayed"]
    assert receipt["newly_committed"]  # horizon 1.0 commits the first cal

    status, advanced = _request(
        server, f"/sessions/{sid}/advance", {"fence": fence, "to": 5.0}
    )
    assert status == 200
    assert advanced["now"] == 5.0

    status, snap = _request(server, f"/sessions/{sid}/schedule")
    assert status == 200
    assert snap["job_count"] == 1
    assert snap["committed"]
    assert snap["fence"] == fence
    assert "schedule" in snap and "digest" in snap

    status, deleted = _request(server, f"/sessions/{sid}", method="DELETE")
    assert status == 200 and deleted["deleted"]
    status, _ = _request(server, f"/sessions/{sid}/schedule")
    assert status == 404


def test_stale_fence_is_rejected_with_409(server) -> None:
    _, created = _request(server, "/sessions", _CREATE)
    sid, fence = created["session_id"], created["fence"]
    status, body = _request(
        server,
        f"/sessions/{sid}/jobs",
        {
            "fence": fence - 1,
            "job": {"id": 1, "release": 0.0, "deadline": 12.0, "processing": 4.0},
        },
    )
    assert status == 409
    assert body["error_type"] == "StaleFenceError"
    assert (body["presented"], body["current"]) == (fence - 1, fence)
    # re-fencing via a read recovers the writer
    _, snap = _request(server, f"/sessions/{sid}/schedule")
    status, _ = _request(
        server,
        f"/sessions/{sid}/jobs",
        {
            "fence": snap["fence"],
            "job": {"id": 1, "release": 0.0, "deadline": 12.0, "processing": 4.0},
        },
    )
    assert status == 200


def test_duplicate_create_conflicts(server) -> None:
    body = dict(_CREATE, session_id="twice")
    assert _request(server, "/sessions", body)[0] == 201
    status, payload = _request(server, "/sessions", body)
    assert status == 409
    assert payload["error_type"] == "SessionConflictError"


def test_unknown_session_is_404(server) -> None:
    assert _request(server, "/sessions/ghost/schedule")[0] == 404
    status, _ = _request(
        server, "/sessions/ghost/advance", {"fence": 1, "to": 1.0}
    )
    assert status == 404


def test_malformed_session_bodies_are_400(server) -> None:
    # missing machines
    status, _ = _request(server, "/sessions", {"calibration_length": 6.0})
    assert status == 400
    _, created = _request(server, "/sessions", _CREATE)
    sid, fence = created["session_id"], created["fence"]
    # job must be an object
    status, _ = _request(
        server, f"/sessions/{sid}/jobs", {"fence": fence, "job": [1, 2, 3]}
    )
    assert status == 400
    # missing "to"
    status, _ = _request(server, f"/sessions/{sid}/advance", {"fence": fence})
    assert status == 400


def test_stats_includes_session_counters(server) -> None:
    _request(server, "/sessions", _CREATE)
    status, stats = _request(server, "/stats")
    assert status == 200
    assert stats["sessions"]["sessions_created"] == 1
    assert stats["sessions"]["sessions_active"] == 1


def test_routes_404_without_a_session_manager() -> None:
    service = SolveService(ServiceConfig(workers=1, queue_capacity=4))
    httpd = make_server(service, port=0)  # no sessions=
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        status, body = _request(httpd, "/sessions", _CREATE)
        assert status == 404
        assert "--session-dir" in body["error"]
    finally:
        httpd.shutdown()
        service.shutdown(drain_deadline=5.0)
        httpd.server_close()


def test_manager_restart_recovers_sessions_and_bumps_fence(
    tmp_path: Path,
) -> None:
    """A new manager over the same directory = a server restart."""
    directory = tmp_path / "sessions"
    first = SessionManager(directory)
    snap = first.create("durable", machines=2, calibration_length=6.0,
                        commit_horizon=1.0)
    receipt, fence = first.submit_job(
        "durable", snap.fence, job_id=1, release=0.0, deadline=12.0,
        processing=4.0,
    )
    assert receipt.newly_committed
    digest = first.snapshot("durable").digest
    first.drain()

    second = SessionManager(directory)
    recovered = second.snapshot("durable")  # lazy recovery from journal
    assert recovered.digest == digest
    assert recovered.fence == fence + 1
    assert second.stats_snapshot()["sessions_recovered"] == 1
    # The old owner's fence is now stale — split-brain writers bounce.
    from repro.core.errors import StaleFenceError

    with pytest.raises(StaleFenceError):
        second.advance("durable", fence, to=1.0)
