"""Tests for the resource-augmentation explorer."""

from __future__ import annotations

import pytest

from repro.analysis import (
    augmentation_frontier,
    frontier_table,
    minimum_speed,
)
from repro.core import Instance, Job
from repro.instances import partition_instance, short_window_instance


class TestMinimumSpeed:
    def test_trivially_feasible_needs_speed_one_at_most(self):
        jobs = (Job(0, 0.0, 10.0, 2.0),)
        s = minimum_speed(jobs, 1, method="exact")
        assert s <= 1.0 + 1e-3

    def test_two_rigid_jobs_one_machine_need_speed_two(self):
        """Two identical zero-slack jobs on one machine: each must halve its
        duration to fit both in the shared window — speed 2 exactly."""
        jobs = (Job(0, 0.0, 2.0, 2.0), Job(1, 0.0, 2.0, 2.0))
        s = minimum_speed(jobs, 1, method="exact", precision=1e-4)
        assert s == pytest.approx(2.0, abs=1e-3)
        # Two machines: no augmentation needed.
        assert minimum_speed(jobs, 2, method="exact") <= 1.0 + 1e-3

    def test_preemptive_lower_bounds_exact(self):
        for seed in range(3):
            gen = short_window_instance(8, 2, 10.0, seed)
            lb = minimum_speed(gen.instance.jobs, 1, method="preemptive")
            exact = minimum_speed(gen.instance.jobs, 1, method="exact")
            assert lb <= exact + 1e-3

    def test_greedy_upper_bounds_exact(self):
        for seed in range(3):
            gen = short_window_instance(8, 2, 10.0, seed)
            exact = minimum_speed(gen.instance.jobs, 2, method="exact")
            greedy = minimum_speed(gen.instance.jobs, 2, method="greedy")
            assert exact <= greedy + 1e-3

    def test_empty_jobs(self):
        assert minimum_speed((), 1) == 1.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            minimum_speed((Job(0, 0.0, 5.0, 1.0),), 1, method="psychic")

    def test_monotone_in_machines(self):
        gen = partition_instance(4, seed=2)
        speeds = [
            minimum_speed(gen.instance.jobs, m, method="exact")
            for m in (1, 2, 3)
        ]
        assert speeds[0] >= speeds[1] - 1e-3 >= speeds[2] - 2e-3

    def test_witness_instances_feasible_at_speed_one(self):
        """Feasible-by-construction instances need no augmentation at their
        stated machine count (the exact oracle confirms at s ~ 1)."""
        gen = short_window_instance(8, 2, 10.0, 5)
        s = minimum_speed(gen.instance.jobs, 2, method="exact")
        assert s <= 1.0 + 1e-3


class TestFrontier:
    def test_structure_and_monotonicity(self):
        gen = partition_instance(4, seed=1)
        points = augmentation_frontier(gen.instance, max_machines=3)
        assert [p.machines for p in points] == [1, 2, 3]
        for point in points:
            assert point.speed_preemptive <= point.speed_achievable + 1e-3
        achievable = [p.speed_achievable for p in points]
        assert achievable == sorted(achievable, reverse=True) or all(
            abs(a - b) < 1e-2 for a, b in zip(achievable, achievable[1:])
        )

    def test_table(self):
        gen = partition_instance(3, seed=0)
        points = augmentation_frontier(gen.instance, max_machines=2)
        text = frontier_table(points).render()
        assert "machines" in text and "speed" in text
