"""Tests that every lower bound is actually a lower bound (vs witnesses and
exact optima) and behaves sanely on edge cases."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job
from repro.analysis import (
    combined_lower_bound,
    long_window_lower_bound,
    long_window_milp_lower_bound,
    short_window_lower_bound,
    work_lower_bound,
)
from repro.baselines import exact_unit_calibrations
from repro.instances import (
    long_window_instance,
    mixed_instance,
    short_window_instance,
    unit_instance,
)


class TestWorkBound:
    def test_values(self, t10):
        jobs = (Job(0, 0.0, 30.0, 7.0), Job(1, 0.0, 30.0, 7.0))
        assert work_lower_bound(jobs, t10) == 2  # 14/10 -> 2
        assert work_lower_bound(jobs[:1], t10) == 1
        assert work_lower_bound((), t10) == 0

    def test_exact_multiple(self, t10):
        jobs = tuple(Job(i, 0.0, 30.0, 5.0) for i in range(4))
        assert work_lower_bound(jobs, t10) == 2  # 20/10 exactly


class TestLongWindowBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_below_witness(self, seed):
        gen = long_window_instance(10, 2, 10.0, seed)
        lb = long_window_lower_bound(gen.instance.jobs, 10.0, 2)
        assert lb <= gen.witness_calibrations + 1e-6

    def test_milp_at_least_lp(self):
        gen = long_window_instance(7, 1, 10.0, 3)
        lp = long_window_lower_bound(gen.instance.jobs, 10.0, 1)
        milp = long_window_milp_lower_bound(gen.instance.jobs, 10.0, 1)
        assert milp >= lp - 1e-6
        assert milp <= gen.witness_calibrations + 1e-6

    def test_empty(self):
        assert long_window_lower_bound((), 10.0, 1) == 0.0


class TestShortWindowBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_below_witness(self, seed):
        gen = short_window_instance(15, 2, 10.0, seed)
        lb = short_window_lower_bound(gen.instance.jobs, 10.0)
        assert lb <= gen.witness_calibrations + 1e-6

    def test_below_exact_on_unit(self):
        """Against ground truth: the interval bound never exceeds the exact
        unit-job optimum (restricted to its short jobs)."""
        for seed in range(3):
            gen = unit_instance(6, 2, 3, seed, max_window=5)  # windows < 2T=6
            shorts = [j for j in gen.instance.jobs if not j.is_long(3.0)]
            if not shorts:
                continue
            lb = short_window_lower_bound(shorts, 3.0)
            exact = exact_unit_calibrations(gen.instance, max_calibrations=8)
            assert lb <= exact + 1e-6

    def test_empty(self):
        assert short_window_lower_bound((), 10.0) == 0.0


class TestCombinedBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_below_witness_on_mixed(self, seed):
        gen = mixed_instance(16, 2, 10.0, seed)
        breakdown = combined_lower_bound(gen.instance)
        assert breakdown.best <= gen.witness_calibrations + 1e-6
        assert breakdown.best >= breakdown.work - 1e-9
        assert breakdown.best >= breakdown.long_lp - 1e-9
        assert breakdown.best >= breakdown.short_interval - 1e-9

    def test_empty_instance(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        assert combined_lower_bound(inst).best == 0.0
