"""Tests for the parameter-sweep runner."""

from __future__ import annotations

import pytest

from repro.analysis import (
    FAMILY_GENERATORS,
    SweepCase,
    run_sweep,
    sweep_table,
)
from repro.core.solver import ISEConfig


class TestSweepCase:
    def test_generate_all_families(self):
        for family in FAMILY_GENERATORS:
            case = SweepCase(family, 8, 2, 4.0, 0)
            generated = case.generate()
            assert generated.instance.n == 8
            assert generated.instance.machines == 2

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            SweepCase("bogus", 5, 1, 10.0, 0).generate()


class TestRunSweep:
    def test_outcomes_in_order_and_valid(self):
        cases = [SweepCase("mixed", 10, 2, 10.0, seed) for seed in range(3)]
        outcomes = run_sweep(cases)
        assert [o.case.seed for o in outcomes] == [0, 1, 2]
        for outcome in outcomes:
            assert outcome.valid
            assert outcome.calibrations_postopt <= outcome.calibrations
            assert outcome.quality_ratio >= 1.0 - 1e-9
            assert outcome.wall_seconds > 0

    def test_without_postopt(self):
        cases = [SweepCase("short", 10, 2, 10.0, 0)]
        outcomes = run_sweep(cases, postopt=False)
        assert outcomes[0].calibrations == outcomes[0].calibrations_postopt

    def test_custom_config(self):
        cases = [SweepCase("mixed", 10, 2, 10.0, 1)]
        outcomes = run_sweep(cases, config=ISEConfig(mm_algorithm="greedy_edf"))
        assert outcomes[0].valid

    def test_empty(self):
        assert run_sweep([]) == []


class TestSweepStashCounters:
    def test_report_carries_stash_counters_when_warm_starting(self):
        from repro.analysis.sweep import run_sweep_report
        from repro.lp import default_stash

        cases = [SweepCase("mixed", 10, 2, 10.0, seed) for seed in range(2)]
        before = default_stash().snapshot()
        report = run_sweep_report(
            cases,
            config=ISEConfig(lp_backend="simplex", lp_warm_start=True),
            mode="serial",
        )
        assert report.lp_stash is not None
        counters = report.lp_stash
        assert counters["hits"] + counters["misses"] >= (
            before["hits"] + before["misses"]
        )
        assert report.to_dict()["lp_stash"] == counters

    def test_cold_sweeps_report_no_stash(self):
        from repro.analysis.sweep import run_sweep_report

        report = run_sweep_report(
            [SweepCase("mixed", 10, 2, 10.0, 0)], mode="serial"
        )
        assert report.lp_stash is None
        assert report.to_dict()["lp_stash"] is None


class TestSweepTable:
    def test_render(self):
        cases = [SweepCase("unit", 8, 2, 4, 0)]
        table = sweep_table(run_sweep(cases), title="t")
        text = table.render()
        assert "unit" in text and "ratio" in text


class TestSweepCLI:
    def test_cli_sweep(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--family", "rigid", "--n", "10", "--machines", "2",
            "--T", "10", "--seeds", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: rigid" in out
        assert out.count("yes") >= 2
