"""Tests for metrics and the report-table formatter."""

from __future__ import annotations

import pytest

from repro.analysis import Table, format_value, ratio, summarize_schedule, write_report
from repro.instances import long_window_instance


class TestRatio:
    def test_normal(self):
        assert ratio(6.0, 2.0) == 3.0

    def test_zero_over_zero(self):
        assert ratio(0.0, 0.0) == 1.0

    def test_positive_over_zero(self):
        assert ratio(5.0, 0.0) == float("inf")


class TestSummarize:
    def test_witness_metrics(self):
        gen = long_window_instance(n=10, machines=2, calibration_length=10.0, seed=0)
        metrics = summarize_schedule(gen.instance, gen.witness)
        assert metrics.num_calibrations == gen.witness_calibrations
        assert metrics.machines_used <= 2
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.busy_time == pytest.approx(gen.instance.total_work)
        assert metrics.calibrated_time == pytest.approx(
            gen.witness_calibrations * 10.0
        )
        row = metrics.row()
        assert row["calibrations"] == metrics.num_calibrations


class TestFormatValue:
    def test_floats(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(2.0) == "2"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"

    def test_bools_and_strings(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value("abc") == "abc"


class TestTable:
    def test_render_alignment(self):
        table = Table(title="demo", columns=["name", "value"])
        table.add_row("a", 1)
        table.add_row("longer", 2.5)
        table.add_note("a note")
        text = table.render()
        assert "== demo ==" in text
        assert "longer" in text
        assert "note: a note" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:4]}) <= 2  # header/sep/rows align

    def test_named_rows(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2)
        assert table.rows == [["1", "2"]]

    def test_mixed_args_rejected(self):
        table = Table(title="t", columns=["a"])
        with pytest.raises(ValueError):
            table.add_row(1, a=2)

    def test_wrong_arity_rejected(self):
        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_write_report(self, tmp_path):
        table = Table(title="t", columns=["a"])
        table.add_row(42)
        path = write_report(table, tmp_path / "out", "exp1")
        assert path.read_text().startswith("== t ==")
