"""Tests for the HTML report generator."""

from __future__ import annotations

import pytest

from repro import solve_ise
from repro.analysis import render_html_report, save_html_report
from repro.core import Schedule
from repro.instances import mixed_instance
from repro.sim import simulate


@pytest.fixture
def solved():
    gen = mixed_instance(10, 2, 10.0, seed=6)
    result = solve_ise(gen.instance)
    return gen.instance, result


class TestRenderHtmlReport:
    def test_contains_all_sections(self, solved):
        instance, result = solved
        doc = render_html_report(instance, result)
        for section in (
            "Solution", "Certified lower bounds", "Stage timings", "Schedule",
        ):
            assert section in doc
        assert doc.startswith("<!DOCTYPE html>")
        assert "<svg" in doc  # inline Gantt

    def test_simulation_section_optional(self, solved):
        instance, result = solved
        without = render_html_report(instance, result)
        assert "Execution" not in without
        run = simulate(instance, result.schedule)
        with_sim = render_html_report(instance, result, simulation=run)
        assert "Execution (event simulator)" in with_sim
        assert "clean" in with_sim

    def test_violations_shown(self, solved):
        from repro.core import Schedule

        instance, result = solved
        broken = Schedule(
            calibrations=result.schedule.calibrations,
            placements=result.schedule.placements[:-1],
            speed=result.schedule.speed,
        )
        run = simulate(instance, broken)
        doc = render_html_report(instance, result, simulation=run)
        assert "violations" in doc
        assert "never completed" in doc

    def test_violation_list_truncates_honestly(self, solved):
        instance, result = solved
        empty = Schedule(
            calibrations=result.schedule.calibrations,
            placements=(),
            speed=result.schedule.speed,
        )
        # Every job goes unplaced; a 10-job instance stays under the limit.
        run = simulate(instance, empty)
        if len(run.violations) <= 20:
            doc = render_html_report(instance, result, simulation=run)
            assert "more</p>" not in doc
        big = mixed_instance(30, 2, 10.0, seed=7).instance
        big_result = solve_ise(big)
        big_empty = Schedule(
            calibrations=big_result.schedule.calibrations,
            placements=(),
            speed=big_result.schedule.speed,
        )
        big_run = simulate(big, big_empty)
        assert len(big_run.violations) > 20
        doc = render_html_report(big, big_result, simulation=big_run)
        hidden = len(big_run.violations) - 20
        assert f"... and {hidden} more" in doc

    def test_certificate_section_when_verified(self, solved):
        from repro.core.solver import ISEConfig

        instance, _ = solved
        verified = solve_ise(instance, ISEConfig(verify=True))
        doc = render_html_report(instance, verified)
        assert "Solve certificate" in doc
        assert verified.certificate.checksum in doc

    def test_no_certificate_section_by_default(self, solved):
        instance, result = solved
        assert "Solve certificate" not in render_html_report(instance, result)

    def test_stash_section(self, solved, tmp_path):
        from repro.lp import BasisStash

        instance, result = solved
        stash = BasisStash()
        doc = render_html_report(instance, result, stash=stash.snapshot())
        assert "LP basis stash" in doc
        path = save_html_report(
            instance, result, tmp_path / "s.html", stash=stash.snapshot()
        )
        assert "LP basis stash" in path.read_text()

    def test_title_escaped(self, solved):
        instance, result = solved
        doc = render_html_report(instance, result, title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in doc

    def test_save(self, solved, tmp_path):
        instance, result = solved
        path = save_html_report(instance, result, tmp_path / "r.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestReportCLI:
    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        inst_path = tmp_path / "i.json"
        main([
            "generate", "--family", "mixed", "--n", "10", "--machines", "2",
            "--T", "10", "--seed", "1", "--out", str(inst_path),
        ])
        out_path = tmp_path / "report.html"
        code = main(["report", str(inst_path), "--out", str(out_path)])
        assert code == 0
        assert out_path.exists()
        assert "Certified lower bounds" in out_path.read_text()
