"""Tests for the exact-MM variant of the Lemma 18 interval bound."""

from __future__ import annotations

import pytest

from repro.analysis import short_window_lower_bound
from repro.baselines import exact_unit_calibrations
from repro.instances import short_window_instance, unit_instance


class TestExactIntervalBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_at_least_flow_variant(self, seed):
        gen = short_window_instance(14, 2, 10.0, seed)
        flow = short_window_lower_bound(gen.instance.jobs, 10.0, method="flow")
        exact = short_window_lower_bound(gen.instance.jobs, 10.0, method="exact")
        assert exact >= flow - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_still_a_lower_bound(self, seed):
        """Against unit-job ground truth: the exact-interval variant never
        exceeds the true optimum."""
        gen = unit_instance(6, 2, 3, seed, max_window=5)
        shorts = [j for j in gen.instance.jobs if not j.is_long(3.0)]
        if len(shorts) != gen.instance.n:
            pytest.skip("instance not purely short-window")
        lb = short_window_lower_bound(gen.instance.jobs, 3.0, method="exact")
        opt = exact_unit_calibrations(gen.instance, max_calibrations=8)
        assert lb <= opt + 1e-9

    def test_unknown_method_rejected(self):
        gen = short_window_instance(6, 1, 10.0, 0)
        with pytest.raises(ValueError):
            short_window_lower_bound(gen.instance.jobs, 10.0, method="magic")

    def test_budget_fallback(self):
        """With a tiny node budget the exact search falls back to flow —
        the result must still be sound (= the flow value)."""
        gen = short_window_instance(16, 2, 10.0, 2)
        tiny = short_window_lower_bound(
            gen.instance.jobs, 10.0, method="exact", exact_node_budget=1
        )
        flow = short_window_lower_bound(gen.instance.jobs, 10.0, method="flow")
        assert tiny >= flow - 1e-9  # per-interval max(flow fallback) >= flow
