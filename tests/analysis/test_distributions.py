"""Tests for sweep-outcome aggregation."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SweepCase,
    aggregate_by_family,
    distribution_table,
    run_sweep,
)
from repro.analysis.sweep import SweepOutcome


def _outcome(family: str, ratio: float, wall: float = 0.01) -> SweepOutcome:
    cals = 10
    post = max(1, round(cals / ratio)) if ratio else cals
    return SweepOutcome(
        case=SweepCase(family, 10, 2, 10.0, 0),
        calibrations=cals,
        calibrations_postopt=post,
        lower_bound=post / ratio if ratio else 0.0,
        machines_used=4,
        valid=True,
        wall_seconds=wall,
    )


class TestAggregate:
    def test_groups_and_sorts(self):
        outcomes = [
            _outcome("b", 1.5),
            _outcome("a", 2.0),
            _outcome("a", 1.0),
        ]
        stats = aggregate_by_family(outcomes)
        assert [s.family for s in stats] == ["a", "b"]
        a = stats[0]
        assert a.cases == 2
        assert a.ratio_mean == pytest.approx(1.5)
        assert a.ratio_median == pytest.approx(1.5)
        assert a.ratio_max == pytest.approx(2.0)

    def test_postopt_recovery(self):
        outcome = SweepOutcome(
            case=SweepCase("x", 10, 2, 10.0, 0),
            calibrations=10,
            calibrations_postopt=8,
            lower_bound=5.0,
            machines_used=3,
            valid=True,
            wall_seconds=0.02,
        )
        stats = aggregate_by_family([outcome])
        assert stats[0].postopt_recovery_mean == pytest.approx(0.2)
        assert stats[0].wall_ms_mean == pytest.approx(20.0)

    def test_empty(self):
        assert aggregate_by_family([]) == []


class TestDistributionTable:
    def test_on_real_sweep(self):
        cases = [
            SweepCase(family, 8, 2, 10.0, seed)
            for family in ("mixed", "rigid")
            for seed in range(2)
        ]
        outcomes = run_sweep(cases)
        table = distribution_table(outcomes, title="dist")
        text = table.render()
        assert "mixed" in text and "rigid" in text
        assert "p95" in text
