"""Tests for the naive baselines."""

from __future__ import annotations

import math

import pytest

from repro.core import Instance, Job, validate_ise
from repro.baselines import always_calibrated, one_calibration_per_job
from repro.instances import (
    clustered_instance,
    long_window_instance,
    mixed_instance,
    short_window_instance,
)


ALL_FAMILIES = [
    lambda seed: long_window_instance(12, 2, 10.0, seed),
    lambda seed: short_window_instance(12, 2, 10.0, seed),
    lambda seed: mixed_instance(12, 2, 10.0, seed),
    lambda seed: clustered_instance(12, 2, 10.0, seed),
]


class TestOneCalibrationPerJob:
    @pytest.mark.parametrize("family", range(len(ALL_FAMILIES)))
    @pytest.mark.parametrize("seed", range(3))
    def test_always_feasible_with_n_calibrations(self, family, seed):
        gen = ALL_FAMILIES[family](seed)
        schedule = one_calibration_per_job(gen.instance)
        report = validate_ise(gen.instance, schedule)
        assert report.ok, report.summary()
        assert schedule.num_calibrations == gen.instance.n

    def test_machine_count_is_release_overlap(self, t10):
        jobs = tuple(Job(i, 0.0, 30.0, 1.0) for i in range(4))
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = one_calibration_per_job(inst)
        # All calibrations [0, 10) overlap: 4 machines.
        assert schedule.num_machines == 4

    def test_empty(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        schedule = one_calibration_per_job(inst)
        assert schedule.num_calibrations == 0


class TestAlwaysCalibrated:
    @pytest.mark.parametrize("family", range(len(ALL_FAMILIES)))
    @pytest.mark.parametrize("seed", range(3))
    def test_always_feasible(self, family, seed):
        gen = ALL_FAMILIES[family](seed)
        schedule = always_calibrated(gen.instance)
        report = validate_ise(gen.instance, schedule)
        assert report.ok, report.summary()

    def test_cost_scales_with_horizon(self, t10):
        """The point of the baseline: idle gaps are paid for."""
        jobs = (
            Job(0, 0.0, 25.0, 2.0),
            Job(1, 200.0, 225.0, 2.0),
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = always_calibrated(inst)
        cells = math.ceil((225.0 - 0.0) / t10)
        assert schedule.num_calibrations >= cells
        assert validate_ise(inst, schedule).ok

    def test_rigid_offgrid_job_overflow(self, t10):
        """A job that fits no grid cell gets a dedicated calibration."""
        jobs = (Job(0, 6.0, 15.0, 8.0),)  # needs [6, 14) — crosses cell at 16? grid origin 6
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = always_calibrated(inst)
        assert validate_ise(inst, schedule).ok

    def test_overflow_with_grid_conflict(self, t10):
        """Grid origin is min release; a later rigid job misaligned with the
        grid goes to the overflow path."""
        jobs = (
            Job(0, 0.0, 25.0, 2.0),            # sets origin 0
            Job(1, 6.0, 15.0, 8.5),            # [6, 14.5): fits neither cell
        )
        inst = Instance(jobs=jobs, machines=2, calibration_length=t10)
        schedule = always_calibrated(inst)
        report = validate_ise(inst, schedule)
        assert report.ok, report.summary()

    def test_empty(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        schedule = always_calibrated(inst)
        assert schedule.num_calibrations == 0
