"""Tests for the lazy TISE greedy baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import Instance, InvalidInstanceError, Job, validate_tise
from repro.baselines import lazy_tise_greedy, one_calibration_per_job
from repro.instances import long_window_instance, staircase_instance
from repro.longwindow import LongWindowSolver


class TestLazyTiseGreedy:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_tise_feasible(self, seed):
        gen = long_window_instance(14, 2, 10.0, seed)
        schedule = lazy_tise_greedy(gen.instance)
        report = validate_tise(gen.instance, schedule)
        assert report.ok, report.summary()
        assert schedule.scheduled_job_ids() == {
            j.job_id for j in gen.instance.jobs
        }

    def test_rejects_short_jobs(self, t10):
        jobs = (Job(0, 0.0, 15.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        with pytest.raises(InvalidInstanceError):
            lazy_tise_greedy(inst)

    def test_lazy_placement_of_single_job(self, t10):
        jobs = (Job(0, 0.0, 50.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = lazy_tise_greedy(inst)
        cal = schedule.calibrations.calibrations[0]
        assert cal.start == pytest.approx(40.0)  # d - T: as late as possible

    def test_shared_calibration_for_nested_windows(self, t10):
        """Laziness pays: the urgent job's latest calibration also covers
        the roomier jobs, so one calibration suffices."""
        jobs = (
            Job(0, 0.0, 25.0, 3.0),    # latest point 15
            Job(1, 0.0, 60.0, 3.0),
            Job(2, 10.0, 70.0, 3.0),
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        schedule = lazy_tise_greedy(inst)
        assert schedule.num_calibrations == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_per_job(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        greedy = lazy_tise_greedy(gen.instance)
        per_job = one_calibration_per_job(gen.instance)
        assert greedy.num_calibrations <= per_job.num_calibrations

    def test_empty(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        assert lazy_tise_greedy(inst).num_calibrations == 0


@given(seed=st.integers(0, 5000), n=st.integers(3, 16))
@settings(max_examples=15, deadline=None)
def test_greedy_property(seed, n):
    """Feasible on every random long-window instance, and at least the
    work lower bound."""
    from repro.analysis import work_lower_bound

    gen = staircase_instance(n, 2, 10.0, seed)
    schedule = lazy_tise_greedy(gen.instance)
    assert validate_tise(gen.instance, schedule).ok
    assert schedule.num_calibrations >= work_lower_bound(
        gen.instance.jobs, 10.0
    )
