"""Tests for the exact solvers: TISE MILP bound and unit-job search."""

from __future__ import annotations

import pytest

from repro.core import InfeasibleInstanceError, Instance, Job
from repro.baselines import (
    exact_unit_calibrations,
    tise_milp_bound,
    unit_matching_feasible,
)
from repro.instances import long_window_instance, unit_instance
from repro.longwindow import solve_tise_lp


class TestTiseMilpBound:
    def test_sandwiched_between_lp_and_known_optimum(self):
        """Two jobs of p = 0.6T at one point: LP = 1.2, integral C forces 2."""
        T = 10.0
        jobs = tuple(
            Job(i, 0.0, 2 * T, 6.0) for i in range(2)
        )
        lp = solve_tise_lp(jobs, T, 4).objective
        milp = tise_milp_bound(jobs, T, 4)
        assert lp == pytest.approx(1.2, abs=1e-6)
        assert milp == pytest.approx(2.0, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_at_least_lp_on_random(self, seed):
        T = 10.0
        gen = long_window_instance(n=8, machines=1, calibration_length=T, seed=seed)
        lp = solve_tise_lp(gen.instance.jobs, T, 3).objective
        milp = tise_milp_bound(gen.instance.jobs, T, 3)
        assert milp >= lp - 1e-6
        # And <= 3x witness (it lower-bounds TISE OPT at 3m).
        assert milp <= 3 * gen.witness_calibrations + 1e-6

    def test_integral_assignments_at_least_as_tight(self):
        T = 10.0
        gen = long_window_instance(n=6, machines=1, calibration_length=T, seed=1)
        relaxed = tise_milp_bound(gen.instance.jobs, T, 3)
        tight = tise_milp_bound(
            gen.instance.jobs, T, 3, integral_assignments=True
        )
        assert tight >= relaxed - 1e-6

    def test_infeasible_budget(self):
        T = 10.0
        jobs = tuple(Job(i, 0.0, 2 * T, T) for i in range(7))
        with pytest.raises(InfeasibleInstanceError):
            tise_milp_bound(jobs, T, 3)

    def test_empty(self):
        assert tise_milp_bound((), 10.0, 3) == 0.0


class TestUnitMatching:
    def test_enough_slots(self):
        jobs = tuple(Job(i, 0.0, 4.0, 1.0) for i in range(3))
        assert unit_matching_feasible(jobs, [0], 3)
        assert unit_matching_feasible(jobs, [1], 3)
        assert not unit_matching_feasible(jobs, [2], 3)  # slots 2,3,4 but d=4 -> 2 usable

    def test_window_restriction(self):
        jobs = (Job(0, 5.0, 7.0, 1.0),)
        assert not unit_matching_feasible(jobs, [0], 3)
        assert unit_matching_feasible(jobs, [5], 3)


class TestExactUnit:
    def test_single_job(self):
        jobs = (Job(0, 0.0, 5.0, 1.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=3.0)
        assert exact_unit_calibrations(inst) == 1

    def test_far_apart_jobs_need_two(self):
        T = 3
        jobs = (Job(0, 0.0, 2.0, 1.0), Job(1, 50.0, 52.0, 1.0))
        inst = Instance(jobs=jobs, machines=1, calibration_length=float(T))
        assert exact_unit_calibrations(inst) == 2

    def test_work_bound_binds(self):
        T = 2
        jobs = tuple(Job(i, 0.0, 6.0, 1.0) for i in range(5))
        inst = Instance(jobs=jobs, machines=1, calibration_length=float(T))
        # ceil(5/2) = 3 calibrations needed and sufficient.
        assert exact_unit_calibrations(inst) == 3

    def test_machine_constraint_enforced(self):
        T = 2
        # 4 rigid simultaneous unit jobs: need 4 parallel calibrations.
        jobs = tuple(Job(i, 0.0, 1.0, 1.0) for i in range(4))
        inst2 = Instance(jobs=jobs, machines=2, calibration_length=float(T))
        with pytest.raises(InfeasibleInstanceError):
            exact_unit_calibrations(inst2, max_calibrations=5)
        inst4 = Instance(jobs=jobs, machines=4, calibration_length=float(T))
        assert exact_unit_calibrations(inst4) == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_at_most_witness(self, seed):
        gen = unit_instance(n=6, machines=2, calibration_length=3, seed=seed)
        exact = exact_unit_calibrations(gen.instance, max_calibrations=8)
        assert exact <= gen.witness_calibrations

    def test_empty(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        assert exact_unit_calibrations(inst) == 0
