"""Tests for lazy binning, cross-checked against the exact unit solver."""

from __future__ import annotations

import pytest

from repro.core import Instance, InvalidInstanceError, Job, validate_ise
from repro.baselines import (
    edf_feasible_from,
    exact_unit_calibrations,
    lazy_binning,
    simulate_edf_from,
)
from repro.instances import unit_instance


class TestEDFSimulation:
    def test_trivial(self):
        jobs = (Job(0, 0.0, 5.0, 1.0),)
        assert edf_feasible_from(jobs, 0, [0])
        assert edf_feasible_from(jobs, 4, [0])
        assert not edf_feasible_from(jobs, 5, [0])

    def test_capacity_matters(self):
        jobs = tuple(Job(i, 0.0, 1.0, 1.0) for i in range(2))
        assert not edf_feasible_from(jobs, 0, [0])
        assert edf_feasible_from(jobs, 0, [0, 0])

    def test_machine_availability_respected(self):
        jobs = (Job(0, 0.0, 2.0, 1.0),)
        assert not edf_feasible_from(jobs, 0, [2])
        assert edf_feasible_from(jobs, 0, [1])

    def test_monotone_in_start(self):
        jobs = (
            Job(0, 0.0, 6.0, 1.0),
            Job(1, 2.0, 7.0, 1.0),
            Job(2, 2.0, 5.0, 1.0),
        )
        results = [edf_feasible_from(jobs, t, [0]) for t in range(0, 8)]
        # Once infeasible, stays infeasible.
        if False in results:
            first = results.index(False)
            assert not any(results[first:])

    def test_simulation_returns_assignments(self):
        jobs = (Job(0, 0.0, 4.0, 1.0), Job(1, 1.0, 3.0, 1.0))
        result = simulate_edf_from(jobs, 0, [0])
        assert result is not None
        assert len(result) == 2
        slots = sorted(a.slot for a in result)
        assert slots[0] >= 0


class TestLazyBinningSingleMachine:
    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_vs_exact(self, seed):
        """On one machine, lazy binning must match the exact optimum
        (Bender et al.'s optimality result for the unit case)."""
        gen = unit_instance(n=6, machines=1, calibration_length=3, seed=seed)
        schedule = lazy_binning(gen.instance)
        report = validate_ise(gen.instance, schedule)
        assert report.ok, report.summary()
        exact = exact_unit_calibrations(gen.instance, max_calibrations=8)
        assert schedule.num_calibrations == exact, (
            f"lazy={schedule.num_calibrations} exact={exact}"
        )

    def test_laziness_delays_calibration(self):
        """A single far-deadline job is calibrated as late as possible."""
        T = 4
        jobs = (Job(0, 0.0, 20.0, 1.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=float(T))
        schedule = lazy_binning(inst)
        assert schedule.num_calibrations == 1
        cal = schedule.calibrations.calibrations[0]
        # Latest feasible activity start for a unit job with d = 20 is 19.
        assert cal.start == pytest.approx(19.0)

    def test_clusters_share_calibration(self):
        T = 5
        jobs = tuple(Job(i, 0.0, 10.0, 1.0) for i in range(4))
        inst = Instance(jobs=jobs, machines=1, calibration_length=float(T))
        schedule = lazy_binning(inst)
        assert schedule.num_calibrations == 1


class TestLazyBinningMultiMachine:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("machines", [2, 3])
    def test_feasible(self, seed, machines):
        gen = unit_instance(
            n=10, machines=machines, calibration_length=3, seed=seed
        )
        schedule = lazy_binning(gen.instance)
        report = validate_ise(gen.instance, schedule)
        assert report.ok, report.summary()

    @pytest.mark.parametrize("seed", range(4))
    def test_two_approx_flavor(self, seed):
        """Calibration count stays within 2x of the exact optimum on the
        small instances where the exact search is affordable (the [5]
        guarantee for the multimachine case)."""
        gen = unit_instance(n=6, machines=2, calibration_length=3, seed=seed)
        schedule = lazy_binning(gen.instance)
        exact = exact_unit_calibrations(gen.instance, max_calibrations=8)
        assert schedule.num_calibrations <= 2 * exact


class TestInputValidation:
    def test_rejects_nonunit(self, t10):
        jobs = (Job(0, 0.0, 25.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        with pytest.raises(InvalidInstanceError):
            lazy_binning(inst)

    def test_rejects_nonintegral_times(self):
        jobs = (Job(0, 0.5, 10.0, 1.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=5.0)
        with pytest.raises(InvalidInstanceError):
            lazy_binning(inst)

    def test_rejects_nonintegral_T(self):
        jobs = (Job(0, 0.0, 10.0, 1.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=2.5)
        with pytest.raises(InvalidInstanceError):
            lazy_binning(inst)
