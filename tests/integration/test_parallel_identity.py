"""Serial-vs-parallel output identity for the solver and sweep layers.

The parallel execution paths (per-interval MM fan-out, concurrent
long/short halves, sweep case pools) are pure optimizations: schedules,
resilience reports, and sweep tables must be *byte-identical* to the
serial run.  These tests pin that contract across seeds and modes, plus
the regression that a solve budget keeps firing inside a parallel
interval solve (the context-local does not silently vanish at the process
boundary).
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepCase, outcome_to_dict, run_sweep, run_sweep_report
from repro.core.checkpoint import ShardJournal
from repro.core.errors import StageTimeoutError
from repro.core.resilience import ResiliencePolicy, SolveBudget
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import mixed_instance, short_window_instance
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver
from repro.testing import FakeClock

SEEDS = [0, 1, 2]


class TestSolveIseIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_solve_matches_serial(self, seed):
        instance = mixed_instance(20, 3, 2.0, seed=seed).instance
        serial = solve_ise(instance, ISEConfig())
        for mode in ("auto", "thread", "process"):
            parallel = solve_ise(
                instance, ISEConfig(max_workers=4, parallel_mode=mode)
            )
            assert parallel.schedule == serial.schedule, mode
            assert parallel.num_calibrations == serial.num_calibrations, mode
            assert parallel.machines_used == serial.machines_used, mode
            assert parallel.lower_bound.best == serial.lower_bound.best, mode

    def test_serial_mode_ignores_workers(self):
        instance = mixed_instance(16, 2, 2.0, seed=7).instance
        serial = solve_ise(instance, ISEConfig())
        forced = solve_ise(
            instance, ISEConfig(max_workers=8, parallel_mode="serial")
        )
        assert forced.schedule == serial.schedule

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shortwindow_reports_match_serial(self, seed):
        instance = short_window_instance(24, 2, 10.0, seed=seed).instance
        serial = ShortWindowSolver(ShortWindowConfig()).solve(instance)
        pooled = ShortWindowSolver(
            ShortWindowConfig(max_workers=4)
        ).solve(instance)
        assert pooled.schedule == serial.schedule
        assert pooled.intervals == serial.intervals
        assert pooled.workers_used > 1
        assert serial.workers_used == 1
        # The merged resilience report replays the buckets in input order,
        # so the attempt log is identical to the serial one.
        assert [a.stage for a in pooled.resilience.attempts] == [
            a.stage for a in serial.resilience.attempts
        ]
        assert [a.backend for a in pooled.resilience.attempts] == [
            a.backend for a in serial.resilience.attempts
        ]


class TestSweepIdentity:
    CASES = [
        SweepCase(family=family, n=14, machines=2, calibration_length=2.0, seed=seed)
        for family in ("mixed", "short")
        for seed in SEEDS
    ]

    @staticmethod
    def _strip(outcome):
        # wall_seconds is a measurement, not an output: exclude it.
        return (
            outcome.case,
            outcome.calibrations,
            outcome.calibrations_postopt,
            outcome.lower_bound,
            outcome.machines_used,
            outcome.valid,
        )

    def test_parallel_sweep_matches_serial(self):
        serial = run_sweep(self.CASES)
        for mode in ("auto", "thread"):
            pooled = run_sweep(self.CASES, workers=4, mode=mode)
            assert [self._strip(o) for o in pooled] == [
                self._strip(o) for o in serial
            ], mode

    def test_sweep_outcomes_in_input_order(self):
        pooled = run_sweep(self.CASES, workers=4)
        assert [o.case for o in pooled] == [c for c in self.CASES]


class TestBudgetAcrossWorkers:
    """Regression: budgets are context-locals, which do not cross process
    boundaries on their own — the pool layer must snapshot and re-enter
    them, or a parallel solve would simply never time out."""

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_timeout_fires_inside_parallel_interval_solve(self, mode):
        instance = short_window_instance(12, 2, 10.0, seed=3).instance
        policy = ResiliencePolicy(budget=SolveBudget(wall_clock=0.0))
        config = ShortWindowConfig(
            resilience=policy, max_workers=2, parallel_mode=mode
        )
        with pytest.raises(StageTimeoutError, match="budget of 0s exhausted"):
            ShortWindowSolver(config).solve(instance)


class TestBudgetExpiryDuringSweep:
    """A sweep-level budget that expires mid-sweep must still flush the
    checkpoint journal and leave a *resumable* state: every case completed
    before the deadline stays journaled, the rest are reported pending, and
    a later resume completes the sweep with results identical to an
    uninterrupted run."""

    CASES = [
        SweepCase(family="mixed", n=6, machines=2, calibration_length=10.0, seed=s)
        for s in range(4)
    ]

    @staticmethod
    def _strip(outcome):
        payload = outcome_to_dict(outcome)
        del payload["wall_seconds"]  # a measurement, not an output
        return payload

    def test_expiry_mid_sweep_flushes_journal_and_resumes(self, tmp_path):
        baseline = run_sweep_report(self.CASES, mode="serial")
        assert baseline.ok

        # A fake clock that ticks per read: the budget genuinely expires
        # part-way through the case loop, deterministically.
        budget = SolveBudget(wall_clock=3.0, clock=FakeClock(step=0.5))
        interrupted = run_sweep_report(
            self.CASES,
            mode="serial",
            checkpoint_dir=tmp_path,
            budget=budget,
        )
        n = len(self.CASES)
        assert interrupted.pending, "budget never expired — test is vacuous"
        assert 0 <= interrupted.solved < n
        assert len(interrupted.pending) == n - interrupted.solved
        assert not interrupted.ok

        # the journal was flushed per completed shard: exactly the solved
        # prefix is durably recorded, nothing for the pending cases
        journal = ShardJournal(tmp_path / "sweep.journal.jsonl")
        assert len(journal.load().done_payloads()) == interrupted.solved

        resumed = run_sweep_report(
            self.CASES, mode="serial", checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.ok
        assert resumed.restored == interrupted.solved
        assert [self._strip(o) for o in resumed.outcomes] == [
            self._strip(o) for o in baseline.outcomes
        ]
