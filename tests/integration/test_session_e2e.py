"""Process-level session chaos: boot, stream, SIGKILL -9, restart, re-fence.

This is the CI ``session-chaos`` job's workload: a real ``repro-ise serve
--session-dir`` subprocess is killed with an honest SIGKILL (no atexit, no
flush) mid-session, restarted over the same directory, and must serve the
exact pre-kill state digest while rejecting the dead writer's fencing
token with a typed 409.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

_REPO = Path(__file__).resolve().parents[2]


def _spawn_server(session_dir: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--workers", "1",
            "--session-dir", str(session_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def _wait_ready(port: int, process: subprocess.Popen, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            out = process.stdout.read().decode() if process.stdout else ""
            raise AssertionError(f"server died during startup:\n{out}")
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            ):
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise AssertionError("server never became healthy")


def _request(port: int, path: str, body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_sigkill_restart_rehydrates_and_fences(tmp_path: Path) -> None:
    session_dir = tmp_path / "sessions"
    port = _free_port()
    server = _spawn_server(session_dir, port)
    try:
        _wait_ready(port, server)
        status, created = _request(
            port, "/sessions",
            {"session_id": "e2e", "machines": 2, "calibration_length": 6.0,
             "commit_horizon": 1.0},
        )
        assert status == 201
        fence = created["fence"]
        for job_id, (release, deadline, processing) in enumerate(
            [(0.0, 12.0, 4.0), (0.0, 10.0, 2.0), (3.0, 20.0, 5.0)], start=1
        ):
            status, receipt = _request(
                port, "/sessions/e2e/jobs",
                {"fence": fence,
                 "job": {"id": job_id, "release": release,
                         "deadline": deadline, "processing": processing}},
            )
            assert status == 200, receipt
        status, advanced = _request(
            port, "/sessions/e2e/advance", {"fence": fence, "to": 4.0}
        )
        assert status == 200
        status, before = _request(port, "/sessions/e2e/schedule")
        assert status == 200
        assert before["committed"]  # something is already irrevocable
    finally:
        # An honest crash: SIGKILL, no drain, no flush.
        server.kill()
        server.wait(timeout=30)

    restarted = _spawn_server(session_dir, port)
    try:
        _wait_ready(port, restarted)
        status, after = _request(port, "/sessions/e2e/schedule")
        assert status == 200, after
        # Byte-identical rehydration of the scheduling state...
        assert after["digest"] == before["digest"]
        assert after["committed"] == before["committed"]
        assert after["job_count"] == before["job_count"]
        # ...with a bumped fence: the dead process's token is now stale.
        assert after["fence"] > before["fence"]
        status, rejected = _request(
            port, "/sessions/e2e/jobs",
            {"fence": before["fence"],
             "job": {"id": 9, "release": 4.0, "deadline": 30.0,
                     "processing": 1.0}},
        )
        assert status == 409
        assert rejected["error_type"] == "StaleFenceError"
        assert rejected["current"] == after["fence"]
        # Duplicate submission of a pre-kill job is an idempotent no-op.
        status, replay = _request(
            port, "/sessions/e2e/jobs",
            {"fence": after["fence"],
             "job": {"id": 1, "release": 0.0, "deadline": 12.0,
                     "processing": 4.0}},
        )
        assert status == 200
        assert replay["replayed"]
    finally:
        restarted.send_signal(signal.SIGTERM)
        assert restarted.wait(timeout=60) == 0  # clean drain exit
