"""Integration tests composing variants: overlap x postopt x speed x sim.

The library's features must compose: the footnote-3 variant's output should
survive consolidation, speed-traded schedules should simulate cleanly,
and theorem checks should hold under every configuration.
"""

from __future__ import annotations

import pytest

from repro import ISEConfig, solve_ise
from repro.core import validate_ise
from repro.instances import (
    long_window_instance,
    mixed_instance,
    short_window_instance,
)
from repro.longwindow import LongWindowSolver, canonicalize, machines_to_speed
from repro.postopt import consolidate
from repro.sim import simulate
from repro.theory import check_theorem1, check_theorem12


class TestOverlapPlusPostopt:
    @pytest.mark.parametrize("seed", range(3))
    def test_consolidation_respects_overlap_semantics(self, seed):
        gen = short_window_instance(16, 2, 10.0, seed)
        result = solve_ise(
            gen.instance, ISEConfig(overlapping_calibrations=True)
        )
        improved = consolidate(gen.instance, result.schedule)
        assert improved.final_calibrations <= result.num_calibrations
        report = validate_ise(
            gen.instance,
            improved.schedule,
            allow_overlapping_calibrations=True,
        )
        assert report.ok, report.summary()
        assert simulate(gen.instance, improved.schedule, allow_overlap=True).ok


class TestSpeedPlusEverything:
    @pytest.mark.parametrize("seed", range(3))
    def test_speed_then_consolidate_then_simulate(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        base = LongWindowSolver().solve(gen.instance)
        traded = machines_to_speed(gen.instance, base.schedule, 6)
        improved = consolidate(gen.instance, traded.schedule)
        assert improved.schedule.speed == traded.schedule.speed
        assert validate_ise(gen.instance, improved.schedule).ok
        assert simulate(gen.instance, improved.schedule).ok

    def test_canonicalize_then_speed(self):
        """Canonical schedules feed the speed transformation unchanged."""
        gen = long_window_instance(10, 2, 10.0, 5)
        base = LongWindowSolver().solve(gen.instance)
        canonical = canonicalize(gen.instance, base.schedule)
        traded = machines_to_speed(gen.instance, canonical.schedule, 6)
        assert validate_ise(gen.instance, traded.schedule).ok
        assert traded.target_calibrations <= canonical.schedule.num_calibrations


class TestTheoremChecksAcrossConfigs:
    CONFIGS = [
        ISEConfig(),
        ISEConfig(mm_algorithm="backtrack"),
        ISEConfig(mm_algorithm="lp_rounding"),
        ISEConfig(rounding_threshold=0.25),
        ISEConfig(window_factor=3.0),
        ISEConfig(prune_empty=False),
    ]

    @pytest.mark.parametrize("config_idx", range(len(CONFIGS)))
    def test_theorem1_holds_for_every_config(self, config_idx):
        gen = mixed_instance(14, 2, 10.0, 3)
        result = solve_ise(gen.instance, self.CONFIGS[config_idx])
        check = check_theorem1(gen.instance, result)
        assert check.holds, check.summary()

    def test_quarter_threshold_still_within_envelope(self):
        """A smaller rounding threshold inflates calibrations but Theorem 12
        as *checked* (4x LP at threshold 1/2) no longer applies; verify the
        generalized bound unpruned <= 2*(1/threshold)*LP instead."""
        gen = long_window_instance(10, 2, 10.0, 2)
        from repro.longwindow import LongWindowConfig

        result = LongWindowSolver(
            LongWindowConfig(rounding_threshold=0.25)
        ).solve(gen.instance)
        assert result.unpruned_calibrations <= 2 * 4 * result.lp_value + 1e-6


class TestRoundingSchemePropagation:
    def test_best_scheme_through_combined_solver(self):
        gen = mixed_instance(14, 2, 10.0, 6)
        best = solve_ise(gen.instance, ISEConfig(rounding_scheme="best"))
        greedy = solve_ise(gen.instance)
        assert validate_ise(gen.instance, best.schedule).ok
        if best.long_result is not None and greedy.long_result is not None:
            assert (
                best.long_result.unpruned_calibrations
                <= greedy.long_result.unpruned_calibrations
            )
        check = check_theorem1(gen.instance, best)
        assert check.holds, check.summary()
