"""Golden regression values: pinned solver outputs for fixed seeds.

These pin the *current* end-to-end behavior so accidental algorithmic
changes are caught immediately.  The pruned calibration count depends on
which optimal LP vertex HiGHS returns, so a SciPy/HiGHS upgrade may
legitimately shift a pinned value — in that case re-pin after confirming
the run still passes the invariant suite (validators, theorem checks).
"""

from __future__ import annotations

import pytest

from repro import solve_ise
from repro.baselines import lazy_binning
from repro.instances import long_window_instance, mixed_instance, unit_instance

# (family, seed) -> (calibrations, best lower bound, n_long)
GOLDEN_COMBINED = {
    ("mixed", 0): (12, 8.0, 9),
    ("mixed", 1): (13, 8.0, 4),
    ("mixed", 2): (12, 8.0, 8),
    ("long", 0): (9, 7.0, 10),
    ("long", 1): (7, 5.0, 10),
}

GOLDEN_LAZY = {0: 4, 1: 4}


@pytest.mark.parametrize("family,seed", sorted(GOLDEN_COMBINED))
def test_combined_solver_golden(family, seed):
    if family == "mixed":
        gen = mixed_instance(15, 2, 10.0, seed)
    else:
        gen = long_window_instance(10, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    cals, lb, n_long = GOLDEN_COMBINED[(family, seed)]
    assert result.num_calibrations == cals
    assert result.lower_bound.best == pytest.approx(lb, abs=1e-6)
    assert result.partition.n_long == n_long


@pytest.mark.parametrize("seed", sorted(GOLDEN_LAZY))
def test_lazy_binning_golden(seed):
    gen = unit_instance(10, 2, 3, seed)
    schedule = lazy_binning(gen.instance)
    assert schedule.num_calibrations == GOLDEN_LAZY[seed]


def test_generator_golden_fingerprint():
    """The seeded generators themselves are pinned (job tuples hash)."""
    gen = mixed_instance(15, 2, 10.0, 0)
    fingerprint = round(
        sum(j.release + 3 * j.deadline + 7 * j.processing for j in gen.instance.jobs),
        6,
    )
    # Re-derive on change: python -c "...print(fingerprint)"
    assert fingerprint == pytest.approx(5069.503629, abs=1e-5)
