"""Tests for the unit-job specialization path of the combined solver."""

from __future__ import annotations

import pytest

from repro import ISEConfig, solve_ise
from repro.baselines import lazy_binning
from repro.core import Instance, Job, validate_ise
from repro.instances import mixed_instance, unit_instance


class TestUnitSpecialization:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_lazy_binning(self, seed):
        gen = unit_instance(10, 2, 3, seed)
        specialized = solve_ise(gen.instance, ISEConfig(specialize_unit=True))
        direct = lazy_binning(gen.instance)
        assert specialized.num_calibrations == direct.num_calibrations
        assert validate_ise(gen.instance, specialized.schedule).ok
        assert specialized.long_result is None
        assert specialized.short_result is None
        assert "lazy_binning" in specialized.wall_times

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_general_path(self, seed):
        """The regime split the paper recommends: on unit inputs the
        specialized algorithm beats (or ties) the general reduction."""
        gen = unit_instance(10, 2, 3, seed)
        specialized = solve_ise(gen.instance, ISEConfig(specialize_unit=True))
        general = solve_ise(gen.instance)
        assert specialized.num_calibrations <= general.num_calibrations

    def test_nonunit_instances_unaffected(self):
        gen = mixed_instance(12, 2, 10.0, 0)
        with_flag = solve_ise(gen.instance, ISEConfig(specialize_unit=True))
        without = solve_ise(gen.instance)
        assert with_flag.num_calibrations == without.num_calibrations
        assert with_flag.long_result is not None or with_flag.short_result is not None

    def test_nonintegral_T_not_specialized(self):
        jobs = (Job(0, 0.0, 10.0, 1.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=2.5)
        result = solve_ise(inst, ISEConfig(specialize_unit=True))
        # Falls through to the general path (T is not integral).
        assert validate_ise(inst, result.schedule).ok

    def test_lower_bound_still_sound(self):
        gen = unit_instance(10, 2, 3, 1)
        result = solve_ise(gen.instance, ISEConfig(specialize_unit=True))
        assert result.num_calibrations >= result.lower_bound.best - 1e-9

    def test_empty_instance(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        result = solve_ise(inst, ISEConfig(specialize_unit=True))
        assert result.num_calibrations == 0
