"""Warm-started LP solves through the pipeline, sweep, and solver layers.

The invariant everywhere: warm starting is a pure wall-clock optimization.
Stash keys are exact content fingerprints of the LP inputs, so a hit
replays the *identical* model from its optimal basis (zero pivots) and
every schedule must be bit-identical to what a cold solve produces — even
when the stash is deliberately poisoned with a stale or corrupt basis
(fault injection), because the solver falls back to a cold phase-1 start.
"""

from __future__ import annotations

from repro.analysis.sweep import SweepCase, run_sweep
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowConfig, LongWindowSolver
from repro.lp import Basis, BasisStash


def _instance(seed: int = 3):
    return long_window_instance(n=8, machines=2, calibration_length=10.0, seed=seed)


def _lp_attempts(result):
    report = result.resilience
    assert report is not None
    return [a for a in report.attempts if a.stage == "lp" and a.outcome == "ok"]


class TestPipelineWarmStart:
    def test_repeat_solve_hits_the_stash_and_matches_cold(self):
        gen = _instance()
        stash = BasisStash()
        warm_cfg = LongWindowConfig(lp_backend="simplex", lp_warm_stash=stash)
        cold = LongWindowSolver(LongWindowConfig(lp_backend="simplex")).solve(
            gen.instance
        )
        first = LongWindowSolver(warm_cfg).solve(gen.instance)
        second = LongWindowSolver(warm_cfg).solve(gen.instance)
        assert first.schedule == cold.schedule
        assert second.schedule == cold.schedule
        snap = stash.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1

    def test_warm_attempt_records_telemetry(self):
        gen = _instance()
        stash = BasisStash()
        cfg = LongWindowConfig(lp_backend="simplex", lp_warm_stash=stash)
        LongWindowSolver(cfg).solve(gen.instance)
        second = LongWindowSolver(cfg).solve(gen.instance)
        (attempt,) = _lp_attempts(second)
        assert attempt.detail.get("warm_started") == 1.0
        assert attempt.detail.get("iterations") == 0.0

    def test_different_instances_do_not_share_bases(self):
        stash = BasisStash()
        cfg = LongWindowConfig(lp_backend="simplex", lp_warm_stash=stash)
        LongWindowSolver(cfg).solve(_instance(seed=3).instance)
        LongWindowSolver(cfg).solve(_instance(seed=4).instance)
        snap = stash.snapshot()
        assert snap["hits"] == 0 and snap["misses"] == 2

    def test_poisoned_stash_still_yields_cold_schedule(self):
        """Fault injection: every stash lookup returns a corrupt basis; the
        solver must fall back to a cold start and the schedule must not
        change."""

        class PoisonedStash(BasisStash):
            def get(self, key):
                super().get(key)  # keep the counters honest
                return Basis(m=2, n=3, basic=(0, 0))

        gen = _instance()
        cold = LongWindowSolver(LongWindowConfig(lp_backend="simplex")).solve(
            gen.instance
        )
        poisoned = LongWindowSolver(
            LongWindowConfig(lp_backend="simplex", lp_warm_stash=PoisonedStash())
        ).solve(gen.instance)
        assert poisoned.schedule == cold.schedule
        (attempt,) = _lp_attempts(poisoned)
        assert attempt.detail.get("warm_started") == 0.0


class TestISEConfigFlag:
    def test_flag_resolves_to_shared_default_stash(self):
        gen = _instance(seed=7)
        warm_cfg = ISEConfig(lp_backend="simplex", lp_warm_start=True)
        cold_cfg = ISEConfig(lp_backend="simplex")
        warm_first = solve_ise(gen.instance, warm_cfg)
        warm_second = solve_ise(gen.instance, warm_cfg)
        cold = solve_ise(gen.instance, cold_cfg)
        assert warm_first.schedule == cold.schedule
        assert warm_second.schedule == cold.schedule

    def test_flagged_config_stays_picklable(self):
        import pickle

        cfg = ISEConfig(lp_backend="simplex", lp_warm_start=True)
        restored = pickle.loads(pickle.dumps(cfg))
        assert restored.lp_warm_start is True
        assert restored.lp_warm_stash is None


class TestSweepWarmStart:
    def test_warm_sweep_outcomes_match_cold(self):
        # Repeat each case so the per-process stash gets genuine hits.
        base = [
            SweepCase(
                family="long",
                n=6,
                machines=2,
                calibration_length=10.0,
                seed=seed,
            )
            for seed in range(2)
        ]
        cases = base + base
        cold = run_sweep(cases, config=ISEConfig(lp_backend="simplex"))
        warm = run_sweep(
            cases, config=ISEConfig(lp_backend="simplex", lp_warm_start=True)
        )

        def strip(outcome):
            return (
                outcome.case,
                outcome.calibrations,
                outcome.lower_bound,
                outcome.machines_used,
                outcome.valid,
            )

        assert [strip(a) for a in cold] == [strip(b) for b in warm]
