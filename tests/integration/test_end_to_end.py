"""Integration tests: the full Theorem 1 solver across families and configs."""

from __future__ import annotations

import pytest

from repro import ISEConfig, ISESolver, solve_ise
from repro.core import Instance, validate_ise
from repro.baselines import one_calibration_per_job
from repro.instances import (
    clustered_instance,
    load_instance,
    load_schedule,
    mixed_instance,
    partition_instance,
    save_instance,
    save_schedule,
    short_window_instance,
    unit_instance,
)


class TestCombinedSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_instances(self, seed):
        gen = mixed_instance(20, 2, 10.0, seed)
        result = solve_ise(gen.instance)
        report = validate_ise(gen.instance, result.schedule)
        assert report.ok, report.summary()
        # Partition accounting.
        assert result.partition.n_long + result.partition.n_short == 20
        if result.partition.n_long:
            assert result.long_result is not None
        if result.partition.n_short:
            assert result.short_result is not None

    def test_pure_long_instance_skips_short_pipeline(self):
        from repro.instances import long_window_instance

        gen = long_window_instance(10, 2, 10.0, 0)
        result = solve_ise(gen.instance)
        assert result.short_result is None
        assert result.long_result is not None

    def test_pure_short_instance_skips_long_pipeline(self):
        gen = short_window_instance(10, 2, 10.0, 0)
        result = solve_ise(gen.instance)
        assert result.long_result is None
        assert result.short_result is not None

    def test_empty_instance(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        result = solve_ise(inst)
        assert result.num_calibrations == 0
        assert result.approximation_ratio == 1.0

    @pytest.mark.parametrize(
        "mm", ["best_greedy", "greedy_edf", "lp_rounding", "auto"]
    )
    def test_all_mm_black_boxes(self, mm):
        gen = mixed_instance(15, 2, 10.0, 3)
        result = solve_ise(gen.instance, ISEConfig(mm_algorithm=mm))
        assert validate_ise(gen.instance, result.schedule).ok

    def test_window_factor_three(self):
        """ABL2 path: a larger Definition 1 threshold reroutes borderline
        jobs to the short pipeline; the result must stay feasible."""
        gen = mixed_instance(15, 2, 10.0, 5)
        base = solve_ise(gen.instance)
        wide = solve_ise(gen.instance, ISEConfig(window_factor=3.0))
        assert validate_ise(gen.instance, wide.schedule).ok
        assert wide.partition.n_long <= base.partition.n_long

    def test_solver_object_reusable(self):
        solver = ISESolver()
        for seed in range(3):
            gen = mixed_instance(10, 2, 10.0, seed)
            result = solver.solve(gen.instance)
            assert validate_ise(gen.instance, result.schedule).ok


class TestAgainstBaselines:
    @pytest.mark.parametrize("seed", range(3))
    def test_beats_per_job_baseline_on_clustered(self, seed):
        """Clustered long-window jobs share calibrations: the combined
        solver must use strictly fewer calibrations than one-per-job on a
        large enough instance."""
        gen = clustered_instance(
            24, 2, 10.0, seed, num_clusters=3, long_fraction=1.0
        )
        result = solve_ise(gen.instance)
        naive = one_calibration_per_job(gen.instance)
        assert result.num_calibrations < naive.num_calibrations

    @pytest.mark.parametrize("seed", range(3))
    def test_ratio_far_below_worst_case(self, seed):
        gen = mixed_instance(20, 2, 10.0, seed)
        result = solve_ise(gen.instance)
        # Worst-case guarantee would be O(alpha); measured is much smaller.
        assert result.approximation_ratio < 12.0


class TestSolveAndPersist:
    def test_round_trip_through_disk(self, tmp_path):
        gen = unit_instance(10, 2, 4, 1)
        inst_path = tmp_path / "instance.json"
        save_instance(gen.instance, inst_path)
        inst = load_instance(inst_path)
        result = solve_ise(inst)
        sched_path = tmp_path / "schedule.json"
        save_schedule(result.schedule, sched_path)
        back = load_schedule(sched_path)
        assert validate_ise(inst, back).ok


class TestNPHardnessGadget:
    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_partition_instances_solved_with_augmentation(self, k):
        gen = partition_instance(k, seed=k)
        result = solve_ise(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok
        # The witness shows OPT <= 2; the solver may use extra calibrations
        # (it does not solve Partition!) but must stay feasible and within
        # the Theorem 20 envelope.
        assert result.num_calibrations >= 2
