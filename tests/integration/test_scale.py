"""Medium-scale smoke tests: the pipelines at sizes above the unit tests."""

from __future__ import annotations

import pytest

from repro import solve_ise
from repro.core import validate_ise
from repro.instances import clustered_instance, mixed_instance, short_window_instance
from repro.theory import check_theorem1


class TestMediumScale:
    def test_mixed_60_jobs(self):
        gen = mixed_instance(60, 3, 10.0, seed=100)
        result = solve_ise(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok
        check = check_theorem1(gen.instance, result)
        assert check.holds, check.summary()
        # Quality stays reasonable at scale.
        assert result.approximation_ratio < 4.0

    def test_short_100_jobs(self):
        gen = short_window_instance(100, 3, 10.0, seed=101)
        result = solve_ise(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok

    def test_clustered_80_jobs(self):
        gen = clustered_instance(
            80, 3, 10.0, seed=102, num_clusters=5, intercluster_gap_factor=8.0
        )
        result = solve_ise(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok
        # Many clusters: witness has >= 5 temporally isolated groups, and
        # so does the solution; the lower bound reflects the work.
        assert result.num_calibrations >= 5
