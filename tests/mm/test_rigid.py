"""Tests for the rigid-jobs exact MM fast path."""

from __future__ import annotations

import pytest

from repro.core import Job
from repro.mm import (
    AutoMM,
    BestOfGreedyMM,
    ExactMM,
    RigidExactMM,
    all_rigid,
    get_mm_algorithm,
    preemptive_machine_lower_bound,
    validate_mm,
)
from repro.instances import rigid_instance


def _rigid_jobs():
    return (
        Job(0, 0.0, 3.0, 3.0),
        Job(1, 1.0, 4.0, 3.0),
        Job(2, 3.5, 6.0, 2.5),
        Job(3, 10.0, 12.0, 2.0),
    )


class TestAllRigid:
    def test_detection(self):
        assert all_rigid(_rigid_jobs())
        assert not all_rigid((Job(0, 0.0, 5.0, 3.0),))
        assert all_rigid(())

    def test_speed_changes_rigidity(self):
        # window 3 = p at speed 1 (rigid), but at speed 2 duration is 1.5.
        jobs = (Job(0, 0.0, 3.0, 3.0),)
        assert all_rigid(jobs, speed=1.0)
        assert not all_rigid(jobs, speed=2.0)


class TestRigidExact:
    def test_optimal_is_max_overlap(self):
        jobs = _rigid_jobs()
        schedule = RigidExactMM().solve(jobs)
        assert validate_mm(jobs, schedule) == []
        # Jobs 0 and 1 overlap on [1, 3); everything else is disjoint.
        assert schedule.num_machines == 2

    def test_matches_exact_bnb(self):
        for seed in range(4):
            gen = rigid_instance(8, 2, 10.0, seed)
            rigid = RigidExactMM().solve(gen.instance.jobs)
            exact = ExactMM().solve(gen.instance.jobs)
            assert rigid.num_machines == exact.num_machines
            assert validate_mm(gen.instance.jobs, rigid) == []

    def test_at_least_flow_bound(self):
        gen = rigid_instance(12, 3, 10.0, 5)
        rigid = RigidExactMM().solve(gen.instance.jobs)
        # For rigid jobs the flow bound is also exact (intervals are fixed).
        assert rigid.num_machines == preemptive_machine_lower_bound(
            gen.instance.jobs
        )

    def test_rejects_slack_jobs(self):
        with pytest.raises(ValueError):
            RigidExactMM().solve((Job(0, 0.0, 9.0, 2.0),))

    def test_empty(self):
        schedule = RigidExactMM().solve(())
        assert schedule.num_machines == 0

    def test_registered(self):
        assert get_mm_algorithm("rigid_exact").name == "rigid_exact"


class TestAutoRouting:
    def test_auto_uses_rigid_path_on_large_rigid_sets(self):
        """AutoMM must stay exact on rigid sets too large for the B&B."""
        gen = rigid_instance(40, 3, 10.0, 2)
        auto = AutoMM(exact_threshold=5).solve(gen.instance.jobs)
        rigid = RigidExactMM().solve(gen.instance.jobs)
        assert auto.num_machines == rigid.num_machines
        greedy = BestOfGreedyMM().solve(gen.instance.jobs)
        assert auto.num_machines <= greedy.num_machines
