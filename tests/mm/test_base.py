"""Tests for the MM schedule type, validator, and interval utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core import InfeasibleScheduleError, Job, ScheduledJob
from repro.mm import MMSchedule, check_mm, max_overlap, validate_mm
from repro.mm.base import color_intervals


def _jobs():
    return (
        Job(0, 0.0, 10.0, 3.0),
        Job(1, 1.0, 12.0, 4.0),
    )


class TestValidateMM:
    def test_feasible(self):
        sched = MMSchedule(
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(3.0, 0, 1)),
            num_machines=1,
        )
        assert validate_mm(_jobs(), sched) == []
        check_mm(_jobs(), sched)

    def test_missing_job(self):
        sched = MMSchedule(
            placements=(ScheduledJob(0.0, 0, 0),), num_machines=1
        )
        problems = validate_mm(_jobs(), sched)
        assert any("not scheduled" in p for p in problems)

    def test_release_violation(self):
        sched = MMSchedule(
            placements=(ScheduledJob(0.0, 0, 1), ScheduledJob(5.0, 0, 0)),
            num_machines=1,
        )
        problems = validate_mm(_jobs(), sched)
        assert any("before release" in p for p in problems)

    def test_deadline_violation(self):
        sched = MMSchedule(
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(9.0, 0, 1)),
            num_machines=1,
        )
        problems = validate_mm(_jobs(), sched)
        assert any("after deadline" in p for p in problems)

    def test_overlap_violation(self):
        sched = MMSchedule(
            placements=(ScheduledJob(1.0, 0, 0), ScheduledJob(2.0, 0, 1)),
            num_machines=1,
        )
        problems = validate_mm(_jobs(), sched)
        assert any("overlap" in p for p in problems)

    def test_overlap_on_distinct_machines_ok(self):
        sched = MMSchedule(
            placements=(ScheduledJob(1.0, 0, 0), ScheduledJob(2.0, 1, 1)),
            num_machines=2,
        )
        assert validate_mm(_jobs(), sched) == []

    def test_speed_scaling(self):
        # p=2 in a length-2 window at speed 4 -> duration 0.5: both jobs fit
        # sequentially on one fast machine (impossible at speed 1).
        jobs = (Job(0, 0.0, 2.0, 2.0), Job(1, 0.0, 2.0, 2.0))
        sched = MMSchedule(
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(0.5, 0, 1)),
            num_machines=1,
            speed=4.0,
        )
        assert validate_mm(jobs, sched) == []
        slow = MMSchedule(
            placements=sched.placements, num_machines=1, speed=1.0
        )
        assert validate_mm(jobs, slow) != []

    def test_check_raises(self):
        sched = MMSchedule(placements=(), num_machines=0)
        with pytest.raises(InfeasibleScheduleError):
            check_mm(_jobs(), sched, context="unit")


class TestMaxOverlap:
    def test_simple(self):
        assert max_overlap([(0, 2), (1, 3), (2, 4)]) == 2
        assert max_overlap([(0, 1), (1, 2)]) == 1
        assert max_overlap([]) == 0

    @given(
        st.lists(
            st.tuples(
                # Coarse grid: both color_intervals and max_overlap are
                # EPS-tolerant; real schedule data is far coarser than 1e-9.
                st.integers(0, 5000).map(lambda v: v / 100.0),
                st.integers(10, 1000).map(lambda v: v / 100.0),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_coloring_uses_exactly_max_overlap(self, raw):
        intervals = [(i, s, s + d) for i, (s, d) in enumerate(raw)]
        coloring = color_intervals(intervals)
        assert len(coloring) == len(intervals)
        used = max(coloring.values()) + 1
        assert used == max_overlap([(s, e) for _, s, e in intervals])
        # No two same-colored intervals overlap.
        by_color: dict[int, list[tuple[float, float]]] = {}
        for key, s, e in intervals:
            by_color.setdefault(coloring[key], []).append((s, e))
        for spans in by_color.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-9


class TestMaxOverlapEpsTolerance:
    """Regression: max_overlap must agree with the EPS-aware coloring.

    Found by hypothesis (rigid family, n=8, machines=2, seed=624): chaining
    jobs back-to-back through float recomputation can leave one job's start
    a single ulp before its predecessor's end.  Exact-arithmetic overlap
    counting then sees a phantom 3-deep overlap in a ~1e-14-wide window
    while color_intervals (correctly) reuses the machine, making the exact
    rigid MM report more machines than the instance has.
    """

    def test_one_ulp_abutment_is_not_an_overlap(self):
        end = 36.20164205653588
        start = 36.201642056535874  # one ulp earlier than `end`
        assert start < end
        intervals = [(0.0, end), (start, start + 5.0)]
        assert max_overlap(intervals) == 1

    def test_real_overlap_within_eps_grid_still_counts(self):
        assert max_overlap([(0.0, 2.0), (1.0, 3.0)]) == 2

    def test_rigid_seed_624_fits_its_machine_count(self):
        from repro.instances import rigid_instance
        from repro.mm import RigidExactMM, validate_mm as _validate

        gen = rigid_instance(8, 2, 10.0, 624)
        schedule = RigidExactMM().solve(gen.instance.jobs)
        assert _validate(gen.instance.jobs, schedule) == []
        assert schedule.num_machines <= gen.instance.machines
