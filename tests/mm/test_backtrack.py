"""Tests for the backtracking greedy MM black box."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Job
from repro.mm import (
    BacktrackGreedyMM,
    ExactMM,
    GreedyMM,
    get_mm_algorithm,
    preemptive_machine_lower_bound,
    validate_mm,
)


def _random_jobs(n: int, seed: int) -> tuple[Job, ...]:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        r = float(rng.uniform(0, 10))
        p = float(rng.uniform(0.5, 3.0))
        slack = float(rng.uniform(0, 2.0))
        jobs.append(Job(job_id=i, release=r, deadline=r + p + slack, processing=p))
    return tuple(jobs)


class TestBacktrackGreedy:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_feasible(self, seed):
        jobs = _random_jobs(10, seed)
        schedule = BacktrackGreedyMM().solve(jobs)
        assert validate_mm(jobs, schedule) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_never_worse_than_plain_greedy_and_at_least_exact(self, seed):
        jobs = _random_jobs(9, seed)
        plain = GreedyMM(ordering="edf").solve(jobs).num_machines
        repaired = BacktrackGreedyMM().solve(jobs).num_machines
        exact = ExactMM().solve(jobs).num_machines
        assert exact <= repaired <= plain
        assert preemptive_machine_lower_bound(jobs) <= repaired

    def test_repair_actually_fires(self):
        """A case where plain EDF needs an extra machine but one
        displacement fixes it: a long job greedily takes the slot a later
        rigid job needs."""
        jobs = (
            Job(0, 0.0, 10.0, 4.0),   # EDF picks this first (d=10)
            Job(1, 0.0, 11.0, 2.0),
            Job(2, 0.0, 4.0, 4.0),    # rigid-ish, released now, d=4
        )
        # EDF order: job 2 (d=4), job 0 (d=10), job 1 (d=11) — fine on one
        # machine?  2 runs [0,4), 0 runs [4,8), 1 runs [8,10). Actually
        # feasible plainly; build a genuinely conflicting case instead:
        jobs = (
            Job(0, 0.0, 5.0, 3.0),    # d=5: EDF first, takes [0,3)
            Job(1, 2.0, 6.0, 3.0),    # d=6: needs [2,3] start; [3,6) works
            Job(2, 0.0, 9.0, 3.0),    # d=9: would go [6,9) — ok
        )
        plain = GreedyMM(ordering="edf").solve(jobs).num_machines
        repaired = BacktrackGreedyMM().solve(jobs).num_machines
        assert repaired <= plain

    def test_empty_and_single(self):
        assert BacktrackGreedyMM().solve(()).num_machines == 0
        jobs = (Job(0, 1.0, 5.0, 2.0),)
        schedule = BacktrackGreedyMM().solve(jobs)
        assert schedule.num_machines == 1
        assert validate_mm(jobs, schedule) == []

    def test_speed(self):
        jobs = (Job(0, 0.0, 2.0, 2.0), Job(1, 0.0, 2.0, 2.0))
        fast = BacktrackGreedyMM().solve(jobs, speed=2.0)
        assert fast.num_machines == 1
        assert validate_mm(jobs, fast) == []

    def test_registered(self):
        assert get_mm_algorithm("backtrack").name == "backtrack[edf]"

    @pytest.mark.parametrize("seed", range(30, 60))
    def test_measured_alpha_statistics(self, seed):
        """Across a wider sweep the repaired greedy stays within 2x of the
        flow bound on these workloads (empirical; no formal guarantee)."""
        jobs = _random_jobs(8, seed)
        repaired = BacktrackGreedyMM().solve(jobs).num_machines
        flow = preemptive_machine_lower_bound(jobs)
        assert repaired <= 2 * flow + 1
