"""Tests for the MM black boxes: greedy, LP rounding, exact, flow bound.

Invariants:

* every algorithm returns a validator-clean schedule on any job set;
* exact <= every heuristic's machine count;
* the preemptive flow bound <= exact (it relaxes nonpreemption);
* the LP value <= exact (it relaxes integrality over the same start grid).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Job
from repro.mm import (
    BestOfGreedyMM,
    ExactMM,
    GreedyMM,
    LPRoundingMM,
    MM_ALGORITHMS,
    AutoMM,
    fractional_mm_value,
    get_mm_algorithm,
    preemptive_feasible,
    preemptive_machine_lower_bound,
    try_schedule_on_w_machines,
    validate_mm,
)
from repro.mm.greedy import ORDERINGS
from tests.conftest import jobs_strategy


def _random_jobs(n: int, seed: int, tight: bool = False) -> tuple[Job, ...]:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        r = float(rng.uniform(0, 12))
        p = float(rng.uniform(0.5, 3.0))
        slack = float(rng.uniform(0, 1.0 if tight else 5.0))
        jobs.append(Job(job_id=i, release=r, deadline=r + p + slack, processing=p))
    return tuple(jobs)


ALGOS = ["greedy_edf", "best_greedy", "lp_rounding", "exact", "auto"]


class TestAllAlgorithmsFeasible:
    @pytest.mark.parametrize("name", ALGOS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_instances(self, name, seed):
        jobs = _random_jobs(8, seed)
        schedule = get_mm_algorithm(name).solve(jobs)
        assert validate_mm(jobs, schedule) == []
        assert schedule.num_machines >= 1

    @pytest.mark.parametrize("name", ALGOS)
    def test_empty_jobs(self, name):
        schedule = get_mm_algorithm(name).solve(())
        assert schedule.num_machines == 0
        assert len(schedule) == 0

    @pytest.mark.parametrize("name", ALGOS)
    def test_single_job(self, name):
        jobs = (Job(0, 3.0, 8.0, 2.0),)
        schedule = get_mm_algorithm(name).solve(jobs)
        assert validate_mm(jobs, schedule) == []
        assert schedule.num_machines == 1

    @pytest.mark.parametrize("name", ["best_greedy", "exact"])
    def test_speed_augmentation(self, name):
        # Two rigid identical jobs: infeasible together on one speed-1
        # machine, trivially feasible at speed 2.
        jobs = (
            Job(0, 0.0, 2.0, 2.0),
            Job(1, 0.0, 2.0, 2.0),
        )
        fast = get_mm_algorithm(name).solve(jobs, speed=2.0)
        assert validate_mm(jobs, fast) == []
        assert fast.num_machines == 1
        slow = get_mm_algorithm(name).solve(jobs, speed=1.0)
        assert slow.num_machines == 2


class TestBoundsChain:
    @pytest.mark.parametrize("seed", range(5))
    def test_flow_lp_exact_heuristic_chain(self, seed):
        jobs = _random_jobs(7, seed, tight=(seed % 2 == 0))
        flow = preemptive_machine_lower_bound(jobs)
        lp = fractional_mm_value(jobs)
        exact = ExactMM().solve(jobs).num_machines
        greedy = BestOfGreedyMM().solve(jobs).num_machines
        assert flow <= exact
        assert lp <= exact + 1e-9
        assert exact <= greedy

    def test_rigid_disjoint_jobs_need_one_machine(self):
        jobs = tuple(
            Job(i, float(2 * i), float(2 * i + 1), 1.0) for i in range(5)
        )
        assert preemptive_machine_lower_bound(jobs) == 1
        assert ExactMM().solve(jobs).num_machines == 1

    def test_rigid_simultaneous_jobs_need_n_machines(self):
        jobs = tuple(Job(i, 0.0, 1.0, 1.0) for i in range(4))
        assert preemptive_machine_lower_bound(jobs) == 4
        assert ExactMM().solve(jobs).num_machines == 4
        assert BestOfGreedyMM().solve(jobs).num_machines == 4

    def test_preemption_gap_instance(self):
        # Three jobs of length 2 in windows of length 3 sharing [0, 4.5]:
        # preemptively 2 machines can be enough where nonpreemptively more
        # may be needed; just assert the chain holds.
        jobs = (
            Job(0, 0.0, 3.0, 2.0),
            Job(1, 0.75, 3.75, 2.0),
            Job(2, 1.5, 4.5, 2.0),
        )
        flow = preemptive_machine_lower_bound(jobs)
        exact = ExactMM().solve(jobs).num_machines
        assert flow <= exact


class TestGreedyInternals:
    def test_try_schedule_fails_when_w_too_small(self):
        jobs = tuple(Job(i, 0.0, 1.0, 1.0) for i in range(3))
        assert try_schedule_on_w_machines(jobs, 2, 1.0, ORDERINGS["edf"]) is None
        assert try_schedule_on_w_machines(jobs, 3, 1.0, ORDERINGS["edf"]) is not None

    def test_all_orderings_registered(self):
        assert set(ORDERINGS) == {"edf", "release", "latest_start", "lpt"}

    def test_best_of_greedy_not_worse_than_each(self):
        jobs = _random_jobs(10, 3)
        best = BestOfGreedyMM().solve(jobs).num_machines
        for ordering in ORDERINGS:
            single = GreedyMM(ordering=ordering).solve(jobs).num_machines
            assert best <= single


class TestPreemptiveFeasibility:
    def test_monotone_in_w(self):
        jobs = _random_jobs(8, 4)
        results = [preemptive_feasible(jobs, w) for w in range(1, 9)]
        # Once feasible, stays feasible.
        first_true = results.index(True)
        assert all(results[first_true:])

    def test_zero_machines(self):
        assert preemptive_feasible((), 0)
        assert not preemptive_feasible((Job(0, 0, 2, 1),), 0)

    def test_speed_helps(self):
        jobs = (Job(0, 0.0, 2.0, 2.0), Job(1, 0.0, 2.0, 2.0))
        assert not preemptive_feasible(jobs, 1, speed=1.0)
        assert preemptive_feasible(jobs, 1, speed=2.0)


class TestLPRounding:
    def test_deterministic_given_seed(self):
        jobs = _random_jobs(8, 5)
        a = LPRoundingMM(seed=42).solve(jobs)
        b = LPRoundingMM(seed=42).solve(jobs)
        assert a.num_machines == b.num_machines
        assert a.placements == b.placements

    def test_more_trials_never_worse(self):
        jobs = _random_jobs(9, 6)
        few = LPRoundingMM(trials=1, seed=0).solve(jobs).num_machines
        many = LPRoundingMM(trials=40, seed=0).solve(jobs).num_machines
        assert many <= few


class TestRegistry:
    def test_all_names_resolve(self):
        for name in MM_ALGORITHMS:
            algo = get_mm_algorithm(name)
            assert hasattr(algo, "solve")

    def test_instance_passthrough(self):
        algo = GreedyMM()
        assert get_mm_algorithm(algo) is algo

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_mm_algorithm("quantum")

    def test_auto_small_matches_exact(self):
        jobs = _random_jobs(6, 7)
        auto = AutoMM().solve(jobs).num_machines
        exact = ExactMM().solve(jobs).num_machines
        assert auto == exact


@given(jobs_strategy(max_jobs=6))
@settings(max_examples=25)
def test_exact_at_most_greedy_property(jobs):
    exact = ExactMM().solve(jobs)
    greedy = BestOfGreedyMM().solve(jobs)
    assert validate_mm(jobs, exact) == []
    assert exact.num_machines <= greedy.num_machines
    assert preemptive_machine_lower_bound(jobs) <= exact.num_machines
