"""Tests for the footnote-3 variant: overlapping calibrations allowed.

The paper's footnote 3: "If a calibration is allowed to be performed before
the previous calibration ends, then no extra machines are necessary, just
extra calibrations."  The variant keeps every crossing job on its MM machine
with a dedicated overlapping calibration.
"""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, validate_ise
from repro.instances import short_window_instance
from repro.mm import BestOfGreedyMM
from repro.shortwindow import (
    ShortWindowConfig,
    ShortWindowSolver,
    interval_mm_to_ise,
)


class TestTransformVariant:
    def _crossing_case(self, t10):
        jobs = (
            Job(0, 0.0, 10.0, 7.0),
            Job(1, 7.0, 15.0, 5.0),  # crosses the t=10 boundary
        )
        mm = BestOfGreedyMM().solve(jobs)
        return jobs, mm

    def test_machine_pool_is_w(self, t10):
        jobs, mm = self._crossing_case(t10)
        lifted = interval_mm_to_ise(jobs, mm, 0.0, t10, 2.0, overlapping=True)
        assert lifted.schedule.num_machines == mm.num_machines
        assert lifted.crossing_jobs >= 1

    def test_valid_under_overlap_semantics(self, t10):
        jobs, mm = self._crossing_case(t10)
        lifted = interval_mm_to_ise(jobs, mm, 0.0, t10, 2.0, overlapping=True)
        inst = Instance(jobs=jobs, machines=3, calibration_length=t10)
        relaxed = validate_ise(
            inst, lifted.schedule, allow_overlapping_calibrations=True
        )
        assert relaxed.ok, relaxed.summary()

    def test_same_calibration_count_as_standard(self, t10):
        jobs, mm = self._crossing_case(t10)
        standard = interval_mm_to_ise(jobs, mm, 0.0, t10, 2.0)
        overlap = interval_mm_to_ise(jobs, mm, 0.0, t10, 2.0, overlapping=True)
        assert overlap.total_calibrations == standard.total_calibrations


class TestPipelineVariant:
    @pytest.mark.parametrize("seed", range(4))
    def test_fewer_machines_same_jobs(self, seed):
        gen = short_window_instance(18, 2, 10.0, seed)
        standard = ShortWindowSolver().solve(gen.instance)
        overlap = ShortWindowSolver(
            ShortWindowConfig(overlapping_calibrations=True)
        ).solve(gen.instance)
        assert overlap.machines_used <= standard.machines_used
        assert overlap.schedule.scheduled_job_ids() == {
            j.job_id for j in gen.instance.jobs
        }
        report = validate_ise(
            gen.instance, overlap.schedule, allow_overlapping_calibrations=True
        )
        assert report.ok, report.summary()

    def test_strict_validator_may_reject_overlap_output(self):
        """The variant really does overlap calibrations when crossings
        exist — the strict validator must notice on at least one seed."""
        rejected = 0
        for seed in range(8):
            gen = short_window_instance(20, 2, 10.0, seed, max_processing_frac=0.9)
            overlap = ShortWindowSolver(
                ShortWindowConfig(overlapping_calibrations=True, validate=False)
            ).solve(gen.instance)
            strict = validate_ise(gen.instance, overlap.schedule)
            if not strict.ok:
                rejected += 1
        assert rejected >= 1
