"""Tests for Algorithm 4 two-pass interval partitioning (Lemma 16)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core import InvalidInstanceError, Job
from repro.instances import short_window_instance
from repro.shortwindow import partition_short_jobs
from tests.conftest import jobs_strategy


class TestBasicPartitioning:
    def test_nested_job_goes_to_pass0(self, t10):
        # gamma=2: pass-0 intervals are [0, 40), [40, 80), ...
        jobs = (Job(0, 5.0, 20.0, 2.0),)
        partition = partition_short_jobs(jobs, t10)
        assert len(partition.buckets) == 1
        bucket = partition.buckets[0]
        assert bucket.pass_index == 0
        assert bucket.start == 0.0 and bucket.end == 40.0

    def test_boundary_crossing_job_goes_to_pass1(self, t10):
        # Window [35, 50) crosses the pass-0 boundary at 40; pass-1
        # intervals are [20, 60), ... so it nests there.
        jobs = (Job(0, 35.0, 50.0, 2.0),)
        partition = partition_short_jobs(jobs, t10)
        bucket = partition.buckets[0]
        assert bucket.pass_index == 1
        assert bucket.start == 20.0 and bucket.end == 60.0

    def test_negative_times_supported(self, t10):
        jobs = (Job(0, -15.0, -2.0, 2.0),)
        partition = partition_short_jobs(jobs, t10)
        bucket = partition.buckets[0]
        assert bucket.start <= -15.0 and bucket.end >= -2.0

    def test_every_job_in_exactly_one_bucket(self, t10):
        gen = short_window_instance(n=25, machines=2, calibration_length=t10, seed=7)
        partition = partition_short_jobs(gen.instance.jobs, t10)
        seen: list[int] = []
        for bucket in partition.buckets:
            seen.extend(j.job_id for j in bucket.jobs)
        assert sorted(seen) == [j.job_id for j in gen.instance.jobs]

    def test_buckets_are_nested_and_disjoint_per_pass(self, t10):
        gen = short_window_instance(n=30, machines=2, calibration_length=t10, seed=3)
        partition = partition_short_jobs(gen.instance.jobs, t10)
        for bucket in partition.buckets:
            assert bucket.end - bucket.start == pytest.approx(4 * t10)
            for job in bucket.jobs:
                assert job.release >= bucket.start - 1e-9
                assert job.deadline <= bucket.end + 1e-9
        for pass_index in (0, 1):
            buckets = sorted(
                partition.pass_buckets(pass_index), key=lambda b: b.start
            )
            for a, b in zip(buckets, buckets[1:]):
                assert a.end <= b.start + 1e-9


class TestErrors:
    def test_rejects_long_jobs(self, t10):
        jobs = (Job(0, 0.0, 2 * t10, 1.0),)
        with pytest.raises(InvalidInstanceError):
            partition_short_jobs(jobs, t10)

    def test_rejects_nonintegral_gamma(self, t10):
        jobs = (Job(0, 0.0, 15.0, 1.0),)
        with pytest.raises(InvalidInstanceError):
            partition_short_jobs(jobs, t10, gamma=2.5)

    def test_gamma_three_widens_intervals(self, t10):
        # gamma=3 accepts windows < 3T and uses 6T intervals.
        jobs = (Job(0, 0.0, 25.0, 1.0),)
        partition = partition_short_jobs(jobs, t10, gamma=3.0)
        assert partition.interval_length == pytest.approx(6 * t10)


@given(jobs_strategy(max_jobs=12, long_window=False))
def test_lemma16_property(jobs):
    """Every short job is captured by one of the two passes (Lemma 16)."""
    T = 10.0
    partition = partition_short_jobs(jobs, T)
    assert partition.total_jobs == len(jobs)
    ids = sorted(
        j.job_id for bucket in partition.buckets for j in bucket.jobs
    )
    assert ids == sorted(j.job_id for j in jobs)
