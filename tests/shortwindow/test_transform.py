"""Tests for Algorithm 5 (per-interval MM-to-ISE lifting, Lemma 15)."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, validate_ise
from repro.mm import BestOfGreedyMM, ExactMM
from repro.shortwindow import interval_mm_to_ise


def _interval_jobs(t10):
    """Jobs nested in [0, 4T) with a deliberate calibration-crossing job."""
    return (
        Job(0, 0.0, 12.0, 3.0),
        Job(1, 8.0, 19.0, 5.0),   # likely to cross the t=10 boundary
        Job(2, 20.0, 33.0, 4.0),
        Job(3, 2.0, 16.0, 2.0),
    )


class TestAlgorithm5:
    def test_output_is_ise_valid(self, t10):
        jobs = _interval_jobs(t10)
        mm = BestOfGreedyMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        inst = Instance(jobs=jobs, machines=3, calibration_length=t10)
        report = validate_ise(inst, result.schedule)
        assert report.ok, report.summary()

    def test_execution_times_preserved(self, t10):
        jobs = _interval_jobs(t10)
        mm = BestOfGreedyMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        for placement in mm.placements:
            lifted = result.schedule.placement_of(placement.job_id)
            assert lifted.start == pytest.approx(placement.start)

    def test_machine_pool_is_3w(self, t10):
        jobs = _interval_jobs(t10)
        mm = ExactMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        assert result.schedule.num_machines == 3 * mm.num_machines
        assert result.mm_machines == mm.num_machines

    def test_base_calibration_grid(self, t10):
        jobs = _interval_jobs(t10)
        mm = BestOfGreedyMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        w = mm.num_machines
        # 2*gamma = 4 calibrations per base machine, at 0, T, 2T, 3T.
        assert result.base_calibrations == 4 * w
        base_starts = sorted(
            c.start
            for c in result.schedule.calibrations
            if c.machine < w
        )
        assert base_starts == sorted(
            [k * t10 for k in range(4)] * w
        )

    def test_crossing_jobs_get_dedicated_calibrations(self, t10):
        # Force a crossing: one machine, job starting at 7 with p = 5.
        jobs = (
            Job(0, 0.0, 10.0, 7.0),
            Job(1, 7.0, 15.0, 5.0),
        )
        mm = BestOfGreedyMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        assert result.crossing_jobs >= 1
        inst = Instance(jobs=jobs, machines=3, calibration_length=t10)
        assert validate_ise(inst, result.schedule).ok
        # A crossing job lives on a machine >= w with a calibration at its
        # exact start time.
        crossing_machines = {
            p.machine
            for p in result.schedule.placements
            if p.machine >= mm.num_machines
        }
        assert crossing_machines

    def test_calibrations_nested_in_interval(self, t10):
        """Lemma 16's second half: everything stays inside [t, t + 2*gamma*T)."""
        jobs = _interval_jobs(t10)
        mm = BestOfGreedyMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        for cal in result.schedule.calibrations:
            assert cal.start >= -1e-9
            assert cal.start + t10 <= 4 * t10 + 1e-9

    def test_empty_jobs(self, t10):
        from repro.mm import MMSchedule

        result = interval_mm_to_ise(
            (), MMSchedule(placements=(), num_machines=0), 0.0, t10, 2.0
        )
        assert result.total_calibrations == 0
        assert result.crossing_jobs == 0

    def test_calibration_count_bound_lemma19(self, t10):
        """At most 4*gamma*w calibrations per interval (Lemma 19's count:
        2*gamma*w base + at most (2*gamma - 1) crossing per machine)."""
        jobs = _interval_jobs(t10)
        mm = BestOfGreedyMM().solve(jobs)
        result = interval_mm_to_ise(jobs, mm, 0.0, t10, gamma=2.0)
        gamma, w = 2, mm.num_machines
        assert result.total_calibrations <= 4 * gamma * w
