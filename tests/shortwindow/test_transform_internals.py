"""White-box tests for Algorithm 5's calibration-index arithmetic."""

from __future__ import annotations

import pytest

from repro.shortwindow.transform import _calibration_index


class TestCalibrationIndex:
    def test_basic_cells(self):
        T = 10.0
        assert _calibration_index(0.0, 0.0, T) == 0
        assert _calibration_index(9.99, 0.0, T) == 0
        assert _calibration_index(10.0, 0.0, T) == 1
        assert _calibration_index(25.0, 0.0, T) == 2

    def test_nonzero_interval_start(self):
        T = 10.0
        assert _calibration_index(42.0, 40.0, T) == 0
        assert _calibration_index(51.0, 40.0, T) == 1

    def test_boundary_float_snap(self):
        """A start within EPS below a cell boundary belongs to the next cell."""
        T = 10.0
        assert _calibration_index(10.0 - 1e-12, 0.0, T) == 1
        assert _calibration_index(10.0 + 1e-12, 0.0, T) == 1
        # A genuinely interior point is NOT snapped.
        assert _calibration_index(9.5, 0.0, T) == 0

    def test_never_negative(self):
        # Releases can sit exactly at (or a hair before) the interval start.
        assert _calibration_index(0.0 - 1e-12, 0.0, 10.0) == 0
