"""End-to-end tests of the short-window pipeline (Theorem 20)."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, validate_ise
from repro.instances import partition_instance, short_window_instance
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("mm", ["best_greedy", "auto"])
    def test_valid_on_generated_instances(self, seed, mm):
        gen = short_window_instance(
            n=20, machines=2, calibration_length=10.0, seed=seed
        )
        result = ShortWindowSolver(ShortWindowConfig(mm_algorithm=mm)).solve(
            gen.instance
        )
        report = validate_ise(gen.instance, result.schedule)
        assert report.ok, report.summary()
        assert result.schedule.scheduled_job_ids() == {
            j.job_id for j in gen.instance.jobs
        }

    def test_lp_rounding_black_box(self):
        gen = short_window_instance(
            n=12, machines=2, calibration_length=10.0, seed=1
        )
        result = ShortWindowSolver(
            ShortWindowConfig(mm_algorithm="lp_rounding")
        ).solve(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok

    def test_partition_gadget(self):
        gen = partition_instance(5, seed=3)
        result = ShortWindowSolver().solve(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok

    def test_empty_instance(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        result = ShortWindowSolver().solve(inst)
        assert result.num_calibrations == 0


class TestTheorem20Accounting:
    @pytest.mark.parametrize("seed", range(5))
    def test_machine_bound(self, seed):
        """Machines <= 3*(max w pass0) + 3*(max w pass1) <= 6 * alpha * w*."""
        gen = short_window_instance(
            n=20, machines=2, calibration_length=10.0, seed=seed
        )
        result = ShortWindowSolver().solve(gen.instance)
        w0, w1 = result.max_mm_machines
        assert result.machines_used <= 3 * w0 + 3 * w1

    @pytest.mark.parametrize("seed", range(5))
    def test_calibration_bound_against_lower_bound(self, seed):
        """Unpruned calibrations <= 16*gamma*alpha*LB with alpha measured
        per interval; check the loosest sound form: unpruned <=
        8*gamma*(sum of all interval w) and ratio vs Lemma 18 LB finite."""
        gen = short_window_instance(
            n=20, machines=2, calibration_length=10.0, seed=seed
        )
        result = ShortWindowSolver().solve(gen.instance)
        gamma = result.gamma
        total_w = sum(r.mm_machines for r in result.intervals)
        assert result.unpruned_calibrations <= 4 * gamma * total_w + 1e-9
        lb = result.calibration_lower_bound
        assert lb > 0
        # Measured alpha per interval: w_i / w_i^LB.
        alpha = max(
            r.mm_machines / r.mm_lower_bound
            for r in result.intervals
            if r.mm_lower_bound
        )
        assert result.unpruned_calibrations <= 16 * gamma * alpha * lb + 1e-6

    def test_interval_reports_consistent(self):
        gen = short_window_instance(
            n=15, machines=2, calibration_length=10.0, seed=2
        )
        result = ShortWindowSolver().solve(gen.instance)
        assert sum(r.num_jobs for r in result.intervals) == gen.instance.n
        for report in result.intervals:
            assert report.mm_lower_bound is not None
            assert report.mm_lower_bound <= report.mm_machines
            assert report.crossing_jobs <= report.num_jobs

    def test_lower_bounds_can_be_disabled(self):
        gen = short_window_instance(
            n=10, machines=1, calibration_length=10.0, seed=0
        )
        result = ShortWindowSolver(
            ShortWindowConfig(compute_lower_bounds=False)
        ).solve(gen.instance)
        assert all(r.mm_lower_bound is None for r in result.intervals)
        assert result.calibration_lower_bound == 0.0


class TestPruning:
    def test_pruned_at_most_unpruned(self):
        gen = short_window_instance(
            n=15, machines=2, calibration_length=10.0, seed=4
        )
        result = ShortWindowSolver().solve(gen.instance)
        assert result.num_calibrations <= result.unpruned_calibrations

    def test_no_prune_config(self):
        gen = short_window_instance(
            n=10, machines=1, calibration_length=10.0, seed=5
        )
        result = ShortWindowSolver(
            ShortWindowConfig(prune_empty=False)
        ).solve(gen.instance)
        assert result.num_calibrations == result.unpruned_calibrations


class TestSpeed:
    def test_speed_augmented_mm(self):
        """With a 2-speed MM black box, rigid simultaneous jobs pack onto
        fewer machines; the lifted schedule validates at that speed."""
        T = 10.0
        jobs = tuple(Job(i, 0.0, 10.0, 8.0) for i in range(4))
        inst = Instance(jobs=jobs, machines=4, calibration_length=T)
        fast = ShortWindowSolver(
            ShortWindowConfig(speed=2.0, mm_algorithm="best_greedy")
        ).solve(inst)
        slow = ShortWindowSolver().solve(inst)
        assert fast.schedule.speed == pytest.approx(2.0)
        assert validate_ise(inst, fast.schedule).ok
        assert fast.machines_used <= slow.machines_used
