"""Unit tests for the Job and Instance data model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core import Instance, InvalidInstanceError, Job, make_jobs


class TestJobConstruction:
    def test_basic_fields(self):
        job = Job(job_id=3, release=1.0, deadline=9.0, processing=2.5)
        assert job.job_id == 3
        assert job.window == 8.0
        assert job.slack == pytest.approx(5.5)
        assert job.latest_start == pytest.approx(6.5)

    def test_zero_slack_job_allowed(self):
        job = Job(job_id=0, release=0.0, deadline=3.0, processing=3.0)
        assert job.slack == pytest.approx(0.0)

    def test_negative_release_allowed(self):
        job = Job(job_id=0, release=-5.0, deadline=5.0, processing=1.0)
        assert job.window == 10.0

    @pytest.mark.parametrize("processing", [0.0, -1.0, math.nan, math.inf])
    def test_invalid_processing_rejected(self, processing):
        with pytest.raises(InvalidInstanceError):
            Job(job_id=0, release=0.0, deadline=10.0, processing=processing)

    def test_window_too_small_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(job_id=0, release=0.0, deadline=1.0, processing=2.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_nonfinite_times_rejected(self, bad):
        with pytest.raises(InvalidInstanceError):
            Job(job_id=0, release=bad, deadline=10.0, processing=1.0)
        with pytest.raises(InvalidInstanceError):
            Job(job_id=0, release=0.0, deadline=bad, processing=1.0)

    def test_is_long_uses_definition_1(self):
        T = 10.0
        assert Job(0, 0.0, 20.0, 1.0).is_long(T)          # exactly 2T: long
        assert not Job(0, 0.0, 19.999, 1.0).is_long(T)    # just under
        assert Job(0, 0.0, 50.0, 1.0).is_long(T)

    def test_contains_interval(self):
        job = Job(0, 2.0, 12.0, 1.0)
        assert job.contains_interval(2.0, 12.0)
        assert job.contains_interval(3.0, 10.0)
        assert not job.contains_interval(1.0, 5.0)
        assert not job.contains_interval(5.0, 13.0)

    def test_shifted_preserves_processing_and_id(self):
        job = Job(7, 1.0, 11.0, 3.0)
        moved = job.shifted(4.0)
        assert moved.job_id == 7
        assert moved.release == 5.0
        assert moved.deadline == 15.0
        assert moved.processing == 3.0


class TestInstanceConstruction:
    def test_basic(self, t10):
        jobs = make_jobs([(0, 25, 2), (5, 30, 3)])
        inst = Instance(jobs=jobs, machines=2, calibration_length=t10)
        assert inst.n == 2
        assert len(inst) == 2
        assert inst.horizon == (0.0, 30.0)
        assert inst.total_work == pytest.approx(5.0)

    def test_duplicate_ids_rejected(self, t10):
        jobs = (Job(0, 0, 25, 1), Job(0, 1, 26, 1))
        with pytest.raises(InvalidInstanceError):
            Instance(jobs=jobs, machines=1, calibration_length=t10)

    def test_processing_exceeding_T_rejected(self):
        jobs = (Job(0, 0, 25, 5.0),)
        with pytest.raises(InvalidInstanceError):
            Instance(jobs=jobs, machines=1, calibration_length=4.0)

    def test_invalid_machine_count_rejected(self, t10):
        with pytest.raises(InvalidInstanceError):
            Instance(jobs=(), machines=0, calibration_length=t10)

    def test_invalid_calibration_length_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance(jobs=(), machines=1, calibration_length=0.0)

    def test_empty_instance_horizon(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        assert inst.horizon == (0.0, 0.0)
        assert inst.total_work == 0.0

    def test_job_lookup(self, t10):
        jobs = make_jobs([(0, 25, 2), (5, 30, 3)])
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        assert inst.job_by_id(1).release == 5.0
        with pytest.raises(KeyError):
            inst.job_by_id(99)
        assert set(inst.job_map()) == {0, 1}

    def test_long_short_split(self):
        T = 10.0
        jobs = (
            Job(0, 0.0, 20.0, 1.0),   # long (exactly 2T)
            Job(1, 0.0, 15.0, 1.0),   # short
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=T)
        assert [j.job_id for j in inst.long_jobs()] == [0]
        assert [j.job_id for j in inst.short_jobs()] == [1]

    def test_restricted_to_and_with_machines(self, t10):
        jobs = make_jobs([(0, 25, 2), (5, 30, 3), (2, 28, 1)])
        inst = Instance(jobs=jobs, machines=2, calibration_length=t10)
        sub = inst.restricted_to(jobs[:1])
        assert sub.n == 1
        assert sub.machines == 2
        more = inst.with_machines(7)
        assert more.machines == 7
        assert more.n == 3

    def test_make_jobs_sequential_ids(self):
        jobs = make_jobs([(0, 10, 1), (0, 10, 1)], start_id=5)
        assert [j.job_id for j in jobs] == [5, 6]


@given(
    release=st.floats(-100, 100, allow_nan=False),
    window=st.floats(0.5, 100),
    frac=st.floats(0.01, 1.0),
)
def test_job_invariants_property(release, window, frac):
    """Any job built from (release, window, processing <= window) is valid
    and reports consistent derived quantities."""
    processing = frac * window
    job = Job(job_id=0, release=release, deadline=release + window, processing=processing)
    assert job.window == pytest.approx(window)
    assert job.slack == pytest.approx(window - processing)
    assert job.latest_start >= job.release - 1e-9
    assert job.contains_interval(job.release, job.release + processing)
