"""Unit tests for calibrations and calibration schedules."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core import Calibration, CalibrationSchedule, InvalidScheduleError
from repro.core.calibration import pack_round_robin


class TestCalibration:
    def test_end_and_covers(self):
        cal = Calibration(start=5.0, machine=0)
        assert cal.end(10.0) == 15.0
        assert cal.covers(5.0, 15.0, 10.0)
        assert cal.covers(7.0, 9.0, 10.0)
        assert not cal.covers(4.0, 9.0, 10.0)
        assert not cal.covers(7.0, 15.5, 10.0)

    def test_ordering_by_start_then_machine(self):
        cals = [Calibration(3.0, 1), Calibration(1.0, 2), Calibration(3.0, 0)]
        assert sorted(cals) == [
            Calibration(1.0, 2),
            Calibration(3.0, 0),
            Calibration(3.0, 1),
        ]

    def test_shifted(self):
        cal = Calibration(start=2.0, machine=1)
        assert cal.shifted(3.0) == Calibration(5.0, 1)
        assert cal.shifted(-2.0, machine=4) == Calibration(0.0, 4)


class TestCalibrationSchedule:
    def test_sorted_on_construction(self):
        sched = CalibrationSchedule(
            calibrations=(Calibration(5.0, 0), Calibration(1.0, 0)),
            num_machines=1,
            calibration_length=2.0,
        )
        assert [c.start for c in sched] == [1.0, 5.0]
        assert sched.num_calibrations == 2

    def test_machine_out_of_pool_rejected(self):
        with pytest.raises(InvalidScheduleError):
            CalibrationSchedule(
                calibrations=(Calibration(0.0, 3),),
                num_machines=2,
                calibration_length=1.0,
            )

    def test_overlap_detection(self):
        sched = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0), Calibration(5.0, 0)),
            num_machines=1,
            calibration_length=10.0,
        )
        assert len(sched.overlap_violations()) == 1

    def test_back_to_back_is_not_overlap(self):
        sched = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0), Calibration(10.0, 0)),
            num_machines=1,
            calibration_length=10.0,
        )
        assert sched.overlap_violations() == []

    def test_overlap_on_different_machines_ok(self):
        sched = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0), Calibration(5.0, 1)),
            num_machines=2,
            calibration_length=10.0,
        )
        assert sched.overlap_violations() == []
        assert sched.max_concurrent() == 2

    def test_max_concurrent_half_open(self):
        # One ends exactly when the next starts: never concurrent.
        sched = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0), Calibration(10.0, 1)),
            num_machines=2,
            calibration_length=10.0,
        )
        assert sched.max_concurrent() == 1

    def test_on_machine(self):
        sched = CalibrationSchedule(
            calibrations=(
                Calibration(0.0, 0),
                Calibration(20.0, 0),
                Calibration(5.0, 1),
            ),
            num_machines=2,
            calibration_length=10.0,
        )
        assert [c.start for c in sched.on_machine(0)] == [0.0, 20.0]
        assert [c.start for c in sched.on_machine(1)] == [5.0]

    def test_merged_with_offsets_machines(self):
        a = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0),),
            num_machines=2,
            calibration_length=10.0,
        )
        b = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0),),
            num_machines=1,
            calibration_length=10.0,
        )
        merged = a.merged_with(b)
        assert merged.num_machines == 3
        machines = sorted(c.machine for c in merged)
        assert machines == [0, 2]

    def test_merged_with_mismatched_T_rejected(self):
        a = CalibrationSchedule((), 1, 10.0)
        b = CalibrationSchedule((), 1, 5.0)
        with pytest.raises(InvalidScheduleError):
            a.merged_with(b)


class TestPackRoundRobin:
    def test_assignment_order(self):
        sched = pack_round_robin([0.0, 1.0, 2.0, 3.0], 2, 10.0)
        machines = [c.machine for c in sched]
        assert machines == [0, 1, 0, 1]

    def test_enough_machines_avoids_overlap(self):
        # 4 calibrations all at time 0, 4 machines: no overlap.
        sched = pack_round_robin([0.0] * 4, 4, 10.0)
        assert sched.overlap_violations() == []

    @given(
        starts=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30),
        T=st.floats(1.0, 20.0),
    )
    def test_round_robin_valid_when_density_bounded(self, starts, T):
        """If at most w calibrations start in any length-T window, w-machine
        round-robin never overlaps (the Lemma 4 argument)."""
        starts = sorted(starts)
        # Compute the max density of starts in any half-open length-T window.
        density = 1
        for i, s in enumerate(starts):
            count = sum(1 for t in starts if s <= t < s + T - 1e-9)
            density = max(density, count)
        sched = pack_round_robin(starts, density, T)
        assert sched.overlap_violations() == []
