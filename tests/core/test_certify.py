"""Solve certificates: issuance, checksums, round trips, verified mode."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    CertificationError,
    GUARANTEE_FACTOR,
    Schedule,
    SolveCertificate,
    certify_result,
    instance_fingerprint,
)
from repro.core.errors import InvalidArtifactError
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import mixed_instance
from repro.testing import FaultPlan, inject_ise_corruption


@pytest.fixture(scope="module")
def instance():
    return mixed_instance(10, 2, 10.0, seed=3).instance


@pytest.fixture(scope="module")
def verified(instance):
    return solve_ise(instance, ISEConfig(verify=True))


def _dropped_placement(result):
    broken = Schedule(
        calibrations=result.schedule.calibrations,
        placements=result.schedule.placements[:-1],
        speed=result.schedule.speed,
    )
    return dataclasses.replace(result, schedule=broken)


class TestInstanceFingerprint:
    def test_stable_across_calls(self, instance) -> None:
        assert instance_fingerprint(instance) == instance_fingerprint(instance)

    def test_sensitive_to_content(self, instance) -> None:
        other = mixed_instance(10, 2, 10.0, seed=4).instance
        assert instance_fingerprint(instance) != instance_fingerprint(other)


class TestCertifyResult:
    def test_valid_result_certifies_ok(self, instance, verified) -> None:
        cert = certify_result(instance, verified)
        assert cert.ok and cert.valid
        assert cert.violations == 0
        assert cert.instance == instance_fingerprint(instance)
        assert cert.calibrations == verified.num_calibrations
        assert cert.guarantee_factor == pytest.approx(GUARANTEE_FACTOR)
        assert cert.verify_checksum()

    def test_corrupt_result_certifies_invalid(self, instance, verified) -> None:
        cert = certify_result(instance, _dropped_placement(verified))
        assert not cert.ok
        assert cert.violations >= 1
        assert cert.violation_detail
        assert cert.verify_checksum()  # the verdict itself is intact

    def test_issuing_never_raises_on_invalid(self, instance, verified) -> None:
        # Enforcement is the caller's job; certify_result only records.
        certify_result(instance, _dropped_placement(verified))


class TestRoundTrip:
    def test_to_from_dict(self, instance, verified) -> None:
        cert = certify_result(instance, verified)
        assert SolveCertificate.from_dict(cert.to_dict()) == cert

    def test_tampered_payload_rejected(self, instance, verified) -> None:
        data = certify_result(instance, verified).to_dict()
        data["calibrations"] = data["calibrations"] - 1
        with pytest.raises(InvalidArtifactError, match="checksum"):
            SolveCertificate.from_dict(data)

    def test_flipped_verdict_rejected(self, instance, verified) -> None:
        data = certify_result(instance, _dropped_placement(verified)).to_dict()
        data["valid"] = True  # forge an acquittal
        with pytest.raises(InvalidArtifactError, match="checksum"):
            SolveCertificate.from_dict(data)

    def test_malformed_payload_rejected(self) -> None:
        with pytest.raises(InvalidArtifactError, match="malformed"):
            SolveCertificate.from_dict({"version": 1})

    def test_summary_and_describe(self, instance, verified) -> None:
        cert = certify_result(instance, verified)
        summary = cert.summary()
        assert summary["valid"] is True
        assert summary["checksum"] == cert.checksum
        assert "VALID" in cert.describe()


class TestVerifiedMode:
    def test_verify_attaches_certificate(self, instance, verified) -> None:
        assert verified.certificate is not None
        assert verified.certificate.ok
        assert verified.certificate.instance == instance_fingerprint(instance)
        assert "certify" in verified.wall_times

    def test_default_mode_has_no_certificate(self, instance) -> None:
        result = solve_ise(instance, ISEConfig())
        assert result.certificate is None

    def test_corruption_quarantined_behind_typed_error(self, instance) -> None:
        with inject_ise_corruption(FaultPlan("garbage")):
            with pytest.raises(CertificationError) as excinfo:
                solve_ise(instance, ISEConfig(verify=True))
        cert = excinfo.value.certificate
        assert cert is not None and not cert.valid
        assert cert.verify_checksum()

    def test_unverified_mode_lets_the_same_corruption_escape(
        self, instance
    ) -> None:
        # The contrast case: without verify, the corrupted result reaches
        # the caller — which is exactly why verified mode exists.
        with inject_ise_corruption(FaultPlan("garbage")):
            result = solve_ise(instance, ISEConfig())
        cert = certify_result(instance, result)
        assert not cert.ok
