"""Unit tests for the shard journal and checkpointed-run recovery policy."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import (
    CheckpointedRun,
    ShardJournal,
    TornTailWarning,
    append_journal_line,
    append_journal_lines,
    journal_payload,
    shard_error_context,
    verify_journal_line,
)
from repro.core.errors import (
    CorruptArtifactError,
    InvalidArtifactError,
    StageTimeoutError,
)


def _double(x: int) -> int:
    return x * 2


def _identity(value):
    return value


class TestJournalPayload:
    """The batched line writer: spliced checksums must verify like any line."""

    def test_every_payload_line_passes_verification(self):
        records = [
            {"seq": 1, "kind": "job", "release": 0.0, "at": -0.0},
            {"seq": 2, "kind": "commit", "jobs": [[7, 2.0]], "note": 'q"}{'},
        ]
        lines = journal_payload(records).decode().splitlines()
        assert len(lines) == 2
        for line, original in zip(lines, records):
            parsed = verify_journal_line(line)
            assert parsed is not None
            assert {k: v for k, v in parsed.items() if k != "sha"} == original

    def test_caller_supplied_sha_is_replaced_not_trusted(self):
        line = journal_payload([{"seq": 1, "sha": "sha256:bogus"}]).decode()
        parsed = verify_journal_line(line.strip())
        assert parsed is not None
        assert parsed["sha"] != "sha256:bogus"

    def test_empty_record_still_round_trips(self):
        parsed = verify_journal_line(journal_payload([{}]).decode().strip())
        assert parsed is not None

    def test_batched_and_single_appends_interleave(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        append_journal_line(path, {"seq": 0, "kind": "header"}, append=False)
        append_journal_lines(
            path, [{"seq": 1, "kind": "a"}, {"seq": 2, "kind": "b"}]
        )
        append_journal_line(path, {"seq": 3, "kind": "c"})
        parsed = [
            verify_journal_line(line)
            for line in path.read_text().splitlines()
        ]
        assert all(record is not None for record in parsed)
        assert [record["seq"] for record in parsed] == [0, 1, 2, 3]

    def test_unsynced_batch_is_still_readable(self, tmp_path):
        path = tmp_path / "os.jsonl"
        append_journal_lines(path, [{"seq": 0, "kind": "x"}], sync=False)
        assert verify_journal_line(path.read_text().strip()) is not None

    def test_empty_batch_is_a_noop(self, tmp_path):
        path = tmp_path / "none.jsonl"
        append_journal_lines(path, [])
        assert not path.exists()


class TestShardJournal:
    def test_create_append_load_round_trip(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        journal.create("fp", 3)
        journal.append("a", "done", payload=1)
        journal.append("b", "failed", error={"type": "X", "message": "boom"})
        state = journal.load()
        assert state.fingerprint == "fp"
        assert state.total_shards == 3
        assert [r["key"] for r in state.records] == ["a", "b"]
        assert state.done_payloads() == {"a": 1}

    def test_later_done_supersedes_failed(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        journal.create("fp", 1)
        journal.append("a", "failed", error={"type": "X", "message": "m"})
        journal.append("a", "done", payload=7)
        assert journal.load().done_payloads() == {"a": 7}

    def test_unknown_status_rejected(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        journal.create("fp", 1)
        with pytest.raises(ValueError):
            journal.append("a", "maybe")

    def test_torn_tail_truncated_with_warning(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = ShardJournal(path)
        journal.create("fp", 2)
        journal.append("a", "done", payload=1)
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "kind": "shard", "status": "do')
        with pytest.warns(TornTailWarning):
            state = journal.load()
        assert state.done_payloads() == {"a": 1}
        # the tail is physically gone: a re-load is clean
        assert journal.load().done_payloads() == {"a": 1}

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = ShardJournal(path)
        journal.create("fp", 2)
        journal.append("a", "done", payload=1)
        journal.append("b", "done", payload=2)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-10] + "corrupted!"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CorruptArtifactError):
            journal.load()

    def test_checksum_guards_each_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = ShardJournal(path)
        journal.create("fp", 1)
        journal.append("a", "done", payload=42)
        record = json.loads(path.read_text().splitlines()[1])
        record["payload"] = 43  # tamper without re-checksumming
        lines = path.read_text().splitlines()
        lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        # tampered final line == torn tail: truncated, not trusted
        with pytest.warns(TornTailWarning):
            state = journal.load()
        assert state.done_payloads() == {}

    def test_out_of_sequence_is_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = ShardJournal(path)
        journal.create("fp", 2)
        journal.append("a", "done", payload=1)
        journal.append("b", "done", payload=2)
        lines = path.read_text().splitlines()
        del lines[1]  # drop seq 1, keep valid seq 2: a replay gap
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CorruptArtifactError):
            journal.load()

    def test_missing_header_is_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        with pytest.raises(CorruptArtifactError):
            ShardJournal(path).load()


class TestCheckpointedRun:
    def test_fresh_run_journals_every_shard(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        run = CheckpointedRun(journal=journal, fingerprint="fp")
        outcomes = run.map(
            _double, [1, 2, 3], ["a", "b", "c"],
            encode=_identity, decode=_identity, mode="serial",
        )
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.status == "done" for o in outcomes)
        assert journal.load().done_payloads() == {"a": 2, "b": 4, "c": 6}

    def test_resume_restores_done_shards(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        CheckpointedRun(journal=journal, fingerprint="fp").map(
            _double, [1, 2], ["a", "b"],
            encode=_identity, decode=_identity, mode="serial",
        )
        calls: list[int] = []

        def tracked(x: int) -> int:
            calls.append(x)
            return x * 2

        outcomes = CheckpointedRun(
            journal=journal, fingerprint="fp", resume=True
        ).map(
            tracked, [1, 2, 3], ["a", "b", "c"],
            encode=_identity, decode=_identity, mode="serial",
        )
        assert calls == [3]  # only the un-journaled shard re-solved
        assert [o.status for o in outcomes] == ["restored", "restored", "done"]
        assert [o.value for o in outcomes] == [2, 4, 6]

    def test_existing_journal_without_resume_is_an_error(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        journal.create("fp", 1)
        with pytest.raises(InvalidArtifactError):
            CheckpointedRun(journal=journal, fingerprint="fp").map(
                _double, [1], ["a"],
                encode=_identity, decode=_identity, mode="serial",
            )

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        journal.create("other-fp", 1)
        with pytest.raises(InvalidArtifactError):
            CheckpointedRun(
                journal=journal, fingerprint="fp", resume=True
            ).map(
                _double, [1], ["a"],
                encode=_identity, decode=_identity, mode="serial",
            )

    def test_resume_with_no_journal_is_a_fresh_run(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        outcomes = CheckpointedRun(
            journal=journal, fingerprint="fp", resume=True
        ).map(
            _double, [5], ["a"],
            encode=_identity, decode=_identity, mode="serial",
        )
        assert outcomes[0].value == 10

    def test_deterministic_failure_quarantines_immediately(self, tmp_path):
        def sometimes(x: int) -> int:
            if x == 2:
                raise ValueError("bad shard")
            return x * 2

        journal = ShardJournal(tmp_path / "run.jsonl")
        outcomes = CheckpointedRun(
            journal=journal, fingerprint="fp", max_shard_retries=3
        ).map(
            sometimes, [1, 2, 3], ["a", "b", "c"],
            encode=_identity, decode=_identity, mode="serial",
        )
        bad = outcomes[1]
        assert bad.status == "failed"
        assert bad.attempts == 1  # no pointless retry of a pure function
        assert bad.error_context == {"type": "ValueError", "message": "bad shard"}
        state = journal.load()
        failed = [r for r in state.records if r["status"] == "failed"]
        assert [r["key"] for r in failed] == ["b"]
        # the healthy shards completed and were journaled
        assert journal.load().done_payloads() == {"a": 2, "c": 6}

    def test_budget_expiry_leaves_shard_pending_and_unjournaled(self, tmp_path):
        def expiring(x: int) -> int:
            if x == 3:
                raise StageTimeoutError("budget gone", stage="lp")
            return x * 2

        journal = ShardJournal(tmp_path / "run.jsonl")
        outcomes = CheckpointedRun(journal=journal, fingerprint="fp").map(
            expiring, [1, 3], ["a", "b"],
            encode=_identity, decode=_identity, mode="serial",
        )
        assert outcomes[1].status == "pending"
        # pending shards leave no record: a resume re-solves them
        assert [r["key"] for r in journal.load().records] == ["a"]

    def test_duplicate_keys_rejected(self, tmp_path):
        journal = ShardJournal(tmp_path / "run.jsonl")
        with pytest.raises(ValueError):
            CheckpointedRun(journal=journal, fingerprint="fp").map(
                _double, [1, 2], ["a", "a"],
                encode=_identity, decode=_identity, mode="serial",
            )


class TestShardErrorContext:
    def test_plain_exception(self):
        context = shard_error_context(ValueError("nope"))
        assert context == {"type": "ValueError", "message": "nope"}

    def test_repro_error_carries_stage_and_elapsed(self):
        error = StageTimeoutError("late", stage="mm", backend="exact", elapsed=1.5)
        context = shard_error_context(error)
        assert context["stage"] == "mm"
        assert context["backend"] == "exact"
        assert context["elapsed"] == 1.5
