"""Tests for :mod:`repro.core.parallel` — the deterministic pool layer.

The contract under test: every mode returns exactly what the serial loop
would, in input order; budgets cross the process boundary as snapshots and
keep firing; anything that prevents pooled execution degrades to serial
rather than erroring.
"""

from __future__ import annotations

import pytest

from repro.core.errors import StageTimeoutError
from repro.core.parallel import (
    MODES,
    ParallelFallbackWarning,
    effective_workers,
    last_fallback_reason,
    parallel_map,
    resolve_mode,
)
from repro.core.resilience import (
    SolveBudget,
    budget_scope,
    check_budget,
    current_budget,
)
from repro.testing import FakeClock


def _square(x: int) -> int:
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x


def _ambient_wall_clock(_: int) -> float | None:
    budget = current_budget()
    return None if budget is None else budget.wall_clock


def _check_stage_budget(_: int) -> str:
    check_budget("worker_stage")
    return "alive"


def _nested_effective_workers(_: int) -> int:
    return effective_workers(4, 4, "process")


class TestResolveMode:
    def test_auto_resolves_to_process(self):
        assert resolve_mode("auto") == "process"

    def test_explicit_modes_pass_through(self):
        for mode in ("serial", "thread", "process"):
            assert resolve_mode(mode) == mode

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown parallel mode"):
            resolve_mode("gpu")

    def test_modes_tuple_is_exhaustive(self):
        assert MODES == ("auto", "serial", "thread", "process")


class TestEffectiveWorkers:
    def test_none_and_single_worker_are_serial(self):
        assert effective_workers(None, 10) == 1
        assert effective_workers(1, 10) == 1

    def test_single_item_is_serial(self):
        assert effective_workers(8, 1) == 1

    def test_capped_by_items(self):
        assert effective_workers(8, 3) == 3

    def test_serial_mode_forces_one(self):
        assert effective_workers(8, 10, "serial") == 1


class TestParallelMapModes:
    ITEMS = list(range(12))

    def test_every_mode_matches_serial(self):
        expected = [_square(x) for x in self.ITEMS]
        for mode in MODES:
            got = parallel_map(_square, self.ITEMS, max_workers=4, mode=mode)
            assert got == expected, mode

    def test_order_is_input_order(self):
        # Descending inputs: any completion-order collection would shuffle.
        items = list(range(20, 0, -1))
        got = parallel_map(_square, items, max_workers=4, mode="process")
        assert got == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], max_workers=4) == []

    def test_first_exception_by_input_index_raises(self):
        for mode in MODES:
            with pytest.raises(ValueError, match="three is right out"):
                parallel_map(
                    _raise_on_three, [3, 1, 2], max_workers=4, mode=mode
                )

    def test_return_exceptions_collects_in_slot(self):
        for mode in MODES:
            got = parallel_map(
                _raise_on_three,
                [1, 3, 5],
                max_workers=4,
                mode=mode,
                return_exceptions=True,
            )
            assert got[0] == 1 and got[2] == 5, mode
            assert isinstance(got[1], ValueError), mode

    def test_unpicklable_fn_falls_back_to_serial(self):
        offset = 7
        with pytest.warns(ParallelFallbackWarning):
            got = parallel_map(
                lambda x: x + offset, self.ITEMS, max_workers=4, mode="process"
            )
        assert got == [x + offset for x in self.ITEMS]


class TestObservableFallback:
    """The serial degradation is never silent: it warns and records why."""

    def test_fallback_warns_and_records_reason(self):
        with pytest.warns(ParallelFallbackWarning, match="fell back to serial"):
            parallel_map(
                lambda x: x, [1, 2, 3], max_workers=2, mode="process"
            )
        reason = last_fallback_reason()
        assert reason is not None
        assert "pickle" in reason.lower() or "lambda" in reason

    def test_healthy_pool_clears_reason(self):
        with pytest.warns(ParallelFallbackWarning):
            parallel_map(lambda x: x, [1, 2], max_workers=2, mode="process")
        assert last_fallback_reason() is not None
        parallel_map(_square, [1, 2], max_workers=2, mode="process")
        assert last_fallback_reason() is None

    def test_serial_paths_do_not_touch_the_hook(self):
        parallel_map(_square, [1, 2], max_workers=2, mode="process")
        assert last_fallback_reason() is None
        parallel_map(_square, [1, 2, 3], mode="serial")
        parallel_map(_square, [1], max_workers=8, mode="process")
        assert last_fallback_reason() is None


class TestOnResult:
    """``on_result`` fires once per input index, in input order."""

    def test_serial_notifies_in_order(self):
        seen: list[tuple[int, int]] = []
        parallel_map(
            _square, [3, 1, 2], mode="serial",
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert seen == [(0, 9), (1, 1), (2, 4)]

    def test_process_notifies_in_order(self):
        seen: list[tuple[int, int]] = []
        parallel_map(
            _square, [5, 4, 3, 2], max_workers=2, mode="process",
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert seen == [(0, 25), (1, 16), (2, 9), (3, 4)]

    def test_exceptions_delivered_under_return_exceptions(self):
        seen: list[tuple[int, object]] = []
        parallel_map(
            _raise_on_three, [1, 3], mode="serial", return_exceptions=True,
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert seen[0] == (0, 1)
        assert seen[1][0] == 1 and isinstance(seen[1][1], ValueError)

    def test_pool_failure_rerun_never_double_notifies(self):
        # Unpicklable fn: the pool attempt fails before any future reports,
        # and the serial rerun must notify each index exactly once.
        seen: list[int] = []
        offset = 1
        with pytest.warns(ParallelFallbackWarning):
            parallel_map(
                lambda x: x + offset, [1, 2, 3], max_workers=2, mode="process",
                on_result=lambda i, v: seen.append(i),
            )
        assert seen == [0, 1, 2]


class TestBudgetPropagation:
    def test_worker_sees_budget_snapshot(self):
        with budget_scope(SolveBudget(wall_clock=30.0)):
            walls = parallel_map(
                _ambient_wall_clock, [0, 1], max_workers=2, mode="process"
            )
        for wall in walls:
            assert wall is not None
            assert 0.0 < wall <= 30.0

    def test_no_budget_means_no_worker_budget(self):
        walls = parallel_map(
            _ambient_wall_clock, [0, 1], max_workers=2, mode="process"
        )
        assert walls == [None, None]

    def test_expired_budget_fires_inside_process_worker(self):
        with budget_scope(SolveBudget(wall_clock=0.0)):
            with pytest.raises(StageTimeoutError, match="worker_stage"):
                parallel_map(
                    _check_stage_budget, [0, 1], max_workers=2, mode="process"
                )

    def test_thread_mode_shares_deterministic_clock(self):
        # The fake clock never advances on its own: expiry is driven purely
        # by the explicit advance, so the thread-pool path is deterministic.
        clock = FakeClock()
        budget = SolveBudget(wall_clock=10.0, clock=clock)
        with budget_scope(budget):
            assert parallel_map(
                _check_stage_budget, [0, 1], max_workers=2, mode="thread"
            ) == ["alive", "alive"]
            clock.advance(20.0)
            with pytest.raises(StageTimeoutError, match="worker_stage"):
                parallel_map(
                    _check_stage_budget, [0, 1], max_workers=2, mode="thread"
                )

    def test_subbudget_drops_injected_clock(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=10.0, clock=clock).start()
        clock.advance(4.0)
        sub = budget.subbudget()
        assert sub.wall_clock is not None
        assert sub.wall_clock == pytest.approx(6.0)
        assert sub.clock is not budget.clock

    def test_subbudget_of_unlimited_budget_is_unlimited(self):
        sub = SolveBudget().start().subbudget()
        assert sub.wall_clock is None

    def test_subbudget_of_expired_budget_is_born_expired(self):
        clock = FakeClock()
        budget = SolveBudget(wall_clock=5.0, clock=clock).start()
        clock.advance(9.0)
        sub = budget.subbudget().start()
        assert sub.expired


class TestNestedPools:
    def test_process_worker_degrades_nested_map_to_serial(self):
        inner = parallel_map(
            _nested_effective_workers, [0, 1], max_workers=2, mode="process"
        )
        assert inner == [1, 1]

    def test_main_process_is_not_a_worker(self):
        assert _nested_effective_workers(0) == 4
