"""Tests for the tolerance helpers (the float-comparison policy)."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.tolerance import EPS, close, geq, gt, leq, lt, snap


class TestPredicates:
    def test_leq_geq_at_boundary(self):
        assert leq(1.0, 1.0)
        assert leq(1.0 + EPS / 2, 1.0)
        assert not leq(1.0 + 2 * EPS, 1.0)
        assert geq(1.0, 1.0)
        assert geq(1.0 - EPS / 2, 1.0)
        assert not geq(1.0 - 2 * EPS, 1.0)

    def test_strict_predicates(self):
        assert lt(1.0, 1.1)
        assert not lt(1.0, 1.0 + EPS / 2)
        assert gt(1.1, 1.0)
        assert not gt(1.0 + EPS / 2, 1.0)

    def test_close(self):
        assert close(1.0, 1.0 + EPS / 2)
        assert not close(1.0, 1.0 + 3 * EPS)

    @given(a=st.floats(-1e6, 1e6), b=st.floats(-1e6, 1e6))
    def test_trichotomy_consistency(self, a, b):
        """Exactly the expected relations hold: lt implies leq and not geq,
        etc."""
        if lt(a, b):
            assert leq(a, b) and not geq(a, b) and not gt(a, b)
        if gt(a, b):
            assert geq(a, b) and not leq(a, b) and not lt(a, b)
        assert leq(a, b) or geq(a, b)  # never both false

    @given(a=st.floats(-1e6, 1e6))
    def test_reflexive(self, a):
        assert leq(a, a) and geq(a, a) and close(a, a)
        assert not lt(a, a) and not gt(a, a)


class TestSnap:
    def test_snaps_near_multiples(self):
        assert snap(3.0 + EPS / 2, 1.0) == 3.0
        assert snap(2.9999999999, 1.0) == 3.0

    def test_leaves_far_values(self):
        assert snap(3.4, 1.0) == 3.4

    def test_custom_grid(self):
        assert snap(0.5 + 1e-12, 0.5) == 0.5

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            snap(1.0, 0.0)
        with pytest.raises(ValueError):
            snap(1.0, -2.0)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro.core import (
            InfeasibleInstanceError,
            InfeasibleScheduleError,
            InvalidInstanceError,
            InvalidScheduleError,
            LimitExceededError,
            ReproError,
            SolverError,
        )

        for exc in (
            InvalidInstanceError,
            InvalidScheduleError,
            InfeasibleScheduleError,
            InfeasibleInstanceError,
            SolverError,
            LimitExceededError,
        ):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        """Instance/Schedule validation errors are also ValueErrors, so
        generic callers can catch them idiomatically."""
        from repro.core import InvalidInstanceError, InvalidScheduleError

        assert issubclass(InvalidInstanceError, ValueError)
        assert issubclass(InvalidScheduleError, ValueError)

    def test_infeasible_schedule_carries_report(self):
        from repro.core import InfeasibleScheduleError

        err = InfeasibleScheduleError("nope", report="the-report")
        assert err.report == "the-report"
