"""One targeted reachability test per :class:`ViolationKind`.

Each test constructs the smallest schedule that violates exactly one
feasibility rule and asserts the validator (a) classifies it with the right
kind and (b) identifies the offending job and/or machine — the identifiers
``ValidationReport.detail()`` puts into exception messages and service
error payloads.  Together they prove no member of the enum is dead code.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Calibration,
    CalibrationSchedule,
    InfeasibleScheduleError,
    Instance,
    Job,
    Schedule,
    ScheduledJob,
    ViolationKind,
    check_ise,
    check_tise,
    validate_ise,
    validate_tise,
)


def _schedule(t10, calibrations, placements, speed=1.0):
    machines = max((c.machine for c in calibrations), default=0) + 1
    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(calibrations),
            num_machines=machines,
            calibration_length=t10,
        ),
        placements=tuple(placements),
        speed=speed,
    )


@pytest.fixture
def instance(t10):
    jobs = (
        Job(job_id=0, release=0.0, deadline=25.0, processing=3.0),
        Job(job_id=1, release=2.0, deadline=30.0, processing=4.0),
    )
    return Instance(jobs=jobs, machines=2, calibration_length=t10)


def _only(report, kind):
    """The violations of ``kind``, asserting the kind was reached at all."""
    found = report.by_kind(kind)
    assert found, (
        f"{kind} not reached; got "
        f"{[v.kind for v in report.violations]}"
    )
    return found


class TestEachKindIsReachable:
    def test_unknown_job(self, instance, t10):
        sched = _schedule(
            t10,
            [Calibration(2.0, 0)],
            [ScheduledJob(2.0, 0, 0), ScheduledJob(5.0, 0, 1), ScheduledJob(8.0, 0, 99)],
        )
        violation = _only(validate_ise(instance, sched), ViolationKind.UNKNOWN_JOB)[0]
        assert violation.job_id == 99
        assert "99" in violation.message

    def test_missing_job(self, instance, t10):
        sched = _schedule(t10, [Calibration(2.0, 0)], [ScheduledJob(2.0, 0, 0)])
        violation = _only(validate_ise(instance, sched), ViolationKind.MISSING_JOB)[0]
        assert violation.job_id == 1
        assert "job 1" in violation.message

    def test_release(self, instance, t10):
        # Job 1 (release 2.0) starts at 1.0.
        sched = _schedule(
            t10,
            [Calibration(0.0, 0)],
            [ScheduledJob(5.0, 0, 0), ScheduledJob(1.0, 0, 1)],
        )
        violation = _only(validate_ise(instance, sched), ViolationKind.RELEASE)[0]
        assert violation.job_id == 1
        assert violation.machine == 0

    def test_deadline(self, t10):
        # Ends at 28.0, past the deadline 27.0.
        jobs = (Job(job_id=0, release=0.0, deadline=27.0, processing=3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = _schedule(t10, [Calibration(25.0, 0)], [ScheduledJob(25.0, 0, 0)])
        violation = _only(validate_ise(inst, sched), ViolationKind.DEADLINE)[0]
        assert violation.job_id == 0
        assert violation.machine == 0

    def test_no_calibration(self, instance, t10):
        # Job 1 runs during [20, 24), entirely outside the one calibrated
        # interval [2, 12).
        sched = _schedule(
            t10,
            [Calibration(2.0, 0)],
            [ScheduledJob(2.0, 0, 0), ScheduledJob(20.0, 0, 1)],
        )
        violation = _only(validate_ise(instance, sched), ViolationKind.NO_CALIBRATION)[0]
        assert violation.job_id == 1
        assert violation.machine == 0

    def test_job_overlap(self, instance, t10):
        # Job 0 occupies [2, 5); job 1 starts at 4 on the same machine.
        sched = _schedule(
            t10,
            [Calibration(2.0, 0)],
            [ScheduledJob(2.0, 0, 0), ScheduledJob(4.0, 0, 1)],
        )
        violation = _only(validate_ise(instance, sched), ViolationKind.JOB_OVERLAP)[0]
        assert violation.job_id == 1
        assert violation.machine == 0
        assert "jobs 0 and 1" in violation.message

    def test_calibration_overlap(self, instance, t10):
        # Two calibrations 5 apart on one machine with T=10.
        sched = _schedule(
            t10,
            [Calibration(0.0, 0), Calibration(5.0, 0)],
            [ScheduledJob(0.0, 0, 0), ScheduledJob(5.0, 0, 1)],
        )
        violation = _only(
            validate_ise(instance, sched), ViolationKind.CALIBRATION_OVERLAP
        )[0]
        assert violation.machine == 0

    def test_tise_window(self, instance, t10):
        # ISE-feasible, but job 1's calibration [0, 10) starts before its
        # release 2.0 — exactly the TISE restriction.
        sched = _schedule(
            t10,
            [Calibration(0.0, 0)],
            [ScheduledJob(0.0, 0, 0), ScheduledJob(5.0, 0, 1)],
        )
        assert validate_ise(instance, sched).ok
        violation = _only(validate_tise(instance, sched), ViolationKind.TISE_WINDOW)[0]
        assert violation.job_id == 1
        assert violation.machine == 0

    def test_machine_budget(self, instance, t10):
        # Feasible on two machines, validated against a budget of one.
        sched = _schedule(
            t10,
            [Calibration(0.0, 0), Calibration(2.0, 1)],
            [ScheduledJob(0.0, 0, 0), ScheduledJob(2.0, 1, 1)],
        )
        violation = _only(
            validate_ise(instance, sched, max_machines=1),
            ViolationKind.MACHINE_BUDGET,
        )[0]
        assert "2 machines" in violation.message
        assert "budget is 1" in violation.message


def test_every_kind_has_a_reachability_test():
    tested = {
        name[len("test_"):]
        for name in dir(TestEachKindIsReachable)
        if name.startswith("test_")
    }
    assert {k.value for k in ViolationKind} <= tested


class TestExceptionMessagesCarryDetail:
    def test_check_ise_names_the_offending_job(self, instance, t10):
        sched = _schedule(
            t10,
            [Calibration(25.0, 0)],
            [ScheduledJob(2.0, 0, 0), ScheduledJob(27.0, 0, 1)],
        )
        with pytest.raises(InfeasibleScheduleError) as excinfo:
            check_ise(instance, sched)
        message = str(excinfo.value)
        # The summary line counts; the detail lines identify.
        assert "[deadline]" in message
        assert "job 1" in message

    def test_check_tise_names_the_offending_job(self, instance, t10):
        sched = _schedule(
            t10,
            [Calibration(0.0, 0)],
            [ScheduledJob(0.0, 0, 0), ScheduledJob(5.0, 0, 1)],
        )
        with pytest.raises(InfeasibleScheduleError) as excinfo:
            check_tise(instance, sched)
        message = str(excinfo.value)
        assert "[tise_window]" in message
        assert "job 1" in message

    def test_detail_is_bounded(self, t10):
        # 30 unplaced jobs, detail limit 5: five lines plus an elision.
        jobs = tuple(
            Job(job_id=i, release=0.0, deadline=30.0, processing=1.0)
            for i in range(30)
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        report = validate_ise(inst, _schedule(t10, [Calibration(0.0, 0)], []))
        detail = report.detail(limit=5)
        assert detail.count("\n") == 5  # 5 violations + "... and N more"
        assert "... and 25 more" in detail
