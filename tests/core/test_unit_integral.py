"""Regression tests for the unit-instance routing predicate.

``_is_unit_integral`` used to hard-code ``1e-9`` comparisons; it now goes
through :mod:`repro.core.tolerance` like every other float comparison in
the library, so the unit-specialization routing cannot drift from the
validators' notion of "integral" if the library-wide EPS ever changes.
"""

from __future__ import annotations

from repro.core import EPS, Instance, Job
from repro.core.solver import ISEConfig, _is_unit_integral, solve_ise


def _unit_instance(**overrides):
    jobs = overrides.pop(
        "jobs",
        (Job(0, 0.0, 6.0, 1.0), Job(1, 2.0, 9.0, 1.0)),
    )
    return Instance(
        jobs=jobs, machines=1, calibration_length=overrides.pop("T", 3.0)
    )


class TestUnitIntegralBoundary:
    def test_clean_unit_instance_is_detected(self):
        assert _is_unit_integral(_unit_instance())

    def test_noise_within_eps_still_counts_as_unit(self):
        # Values a hair off integral (e.g. accumulated fp error from a
        # generator) must not silently disable the specialization.
        jobs = (
            Job(0, 0.0 + EPS / 2, 6.0 - EPS / 2, 1.0 + EPS / 2),
            Job(1, 2.0, 9.0, 1.0),
        )
        assert _is_unit_integral(_unit_instance(jobs=jobs))

    def test_noise_beyond_eps_disables_the_fast_path(self):
        jobs = (Job(0, 0.0, 6.0, 1.0 + 100 * EPS), Job(1, 2.0, 9.0, 1.0))
        assert not _is_unit_integral(_unit_instance(jobs=jobs))

    def test_fractional_t_disables_the_fast_path(self):
        assert not _is_unit_integral(_unit_instance(T=3.5))

    def test_fractional_release_disables_the_fast_path(self):
        jobs = (Job(0, 0.25, 6.0, 1.0), Job(1, 2.0, 9.0, 1.0))
        assert not _is_unit_integral(_unit_instance(jobs=jobs))

    def test_custom_eps_is_respected(self):
        jobs = (Job(0, 0.0, 6.0, 1.001), Job(1, 2.0, 9.0, 1.0))
        instance = _unit_instance(jobs=jobs)
        assert not _is_unit_integral(instance)
        assert _is_unit_integral(instance, eps=0.01)

    def test_specialized_solve_handles_near_unit_noise(self):
        jobs = (
            Job(0, 0.0, 6.0, 1.0 + EPS / 2),
            Job(1, 2.0, 9.0, 1.0 - EPS / 2),
        )
        instance = _unit_instance(jobs=jobs)
        result = solve_ise(instance, ISEConfig(specialize_unit=True))
        # The lazy-binning path was taken (no pipeline sub-results).
        assert result.long_result is None and result.short_result is None
