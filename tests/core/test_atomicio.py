"""Unit tests for the atomic, checksummed artifact IO layer."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    checksum,
    dump_artifact,
    is_envelope,
    load_artifact,
)
from repro.core.errors import CorruptArtifactError


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_file_residue(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"data")
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_failed_write_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        path.write_text("original")

        def boom(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "replacement")
        assert path.read_text() == "original"
        # and the temp file was cleaned up
        assert os.listdir(tmp_path) == ["out.txt"]


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.json"
        payload = {"x": 1, "nested": {"y": [1, 2, 3]}}
        dump_artifact(payload, path)
        assert load_artifact(path) == payload

    def test_on_disk_form_is_an_envelope(self, tmp_path):
        path = tmp_path / "a.json"
        dump_artifact({"x": 1}, path)
        document = json.loads(path.read_text())
        assert is_envelope(document)
        assert document["checksum"].startswith("sha256:")

    def test_legacy_plain_json_loads_without_verification(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"kind": "old", "x": 2}))
        assert load_artifact(path) == {"kind": "old", "x": 2}

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "a.json"
        dump_artifact({"value": 12345}, path)
        text = path.read_text().replace("12345", "12349")
        path.write_text(text)
        with pytest.raises(CorruptArtifactError) as info:
            load_artifact(path)
        assert info.value.path == str(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "a.json"
        dump_artifact({"value": list(range(100))}, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "nope.json")


class TestChecksum:
    def test_deterministic(self):
        assert checksum("abc") == checksum("abc")
        assert checksum("abc") != checksum("abd")

    def test_prefixed(self):
        assert checksum("abc").startswith("sha256:")
