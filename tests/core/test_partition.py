"""Tests for the Definition 1 long/short partition."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core import Instance, Job, partition_jobs
from tests.conftest import instance_strategy


def test_partition_basic(t10):
    jobs = (
        Job(0, 0.0, 20.0, 1.0),   # exactly 2T: long
        Job(1, 0.0, 19.0, 1.0),   # short
        Job(2, 0.0, 50.0, 1.0),   # long
    )
    inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
    split = partition_jobs(inst)
    assert [j.job_id for j in split.long_jobs] == [0, 2]
    assert [j.job_id for j in split.short_jobs] == [1]
    assert split.n_long == 2 and split.n_short == 1
    assert split.threshold == 2 * t10


def test_partition_respects_custom_factor(t10):
    jobs = (Job(0, 0.0, 25.0, 1.0),)
    inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
    assert partition_jobs(inst, factor=2).n_long == 1
    assert partition_jobs(inst, factor=3).n_long == 0


def test_partition_rejects_factor_below_two(t10):
    inst = Instance(jobs=(), machines=1, calibration_length=t10)
    with pytest.raises(ValueError):
        partition_jobs(inst, factor=1.5)


def test_empty_instance(t10):
    inst = Instance(jobs=(), machines=1, calibration_length=t10)
    split = partition_jobs(inst)
    assert split.long_jobs == () and split.short_jobs == ()


@given(instance_strategy(max_jobs=10))
def test_partition_is_a_partition(inst):
    """Every job lands in exactly one side and sides respect the threshold."""
    split = partition_jobs(inst)
    long_ids = {j.job_id for j in split.long_jobs}
    short_ids = {j.job_id for j in split.short_jobs}
    assert long_ids | short_ids == {j.job_id for j in inst.jobs}
    assert not (long_ids & short_ids)
    for job in split.long_jobs:
        assert job.window >= split.threshold - 1e-9
    for job in split.short_jobs:
        assert job.window < split.threshold + 1e-9
