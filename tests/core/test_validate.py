"""Tests for the independent ISE/TISE validators, including failure injection.

The validators are the suite's ground truth, so they get adversarial tests:
every specific way a schedule can be infeasible must be detected, and every
feasible schedule must pass.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Calibration,
    CalibrationSchedule,
    InfeasibleScheduleError,
    Instance,
    Job,
    Schedule,
    ScheduledJob,
    ViolationKind,
    check_ise,
    check_tise,
    validate_ise,
    validate_tise,
)


@pytest.fixture
def instance(t10):
    jobs = (
        Job(job_id=0, release=0.0, deadline=25.0, processing=3.0),
        Job(job_id=1, release=2.0, deadline=30.0, processing=4.0),
    )
    return Instance(jobs=jobs, machines=1, calibration_length=t10)


@pytest.fixture
def good_schedule(t10):
    cals = CalibrationSchedule(
        calibrations=(Calibration(2.0, 0),),
        num_machines=1,
        calibration_length=t10,
    )
    return Schedule(
        calibrations=cals,
        placements=(ScheduledJob(2.0, 0, 0), ScheduledJob(5.0, 0, 1)),
    )


class TestFeasibleSchedules:
    def test_good_schedule_passes_both(self, instance, good_schedule):
        assert validate_ise(instance, good_schedule).ok
        assert validate_tise(instance, good_schedule).ok
        check_ise(instance, good_schedule)
        check_tise(instance, good_schedule)

    def test_boundary_job_exactly_fills_calibration(self, t10):
        jobs = (Job(0, 0.0, 30.0, t10),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0),), 1, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        assert validate_ise(inst, sched).ok

    def test_speed_augmented_schedule(self, t10):
        # p = 15 > T, but at speed 2 the duration is 7.5 <= T.
        jobs = (Job(0, 0.0, 30.0, 10.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(4.0, 0, 0),),
            speed=2.0,
        )
        # Duration 5 -> ends at 9 < 10: fine at speed 2.
        assert validate_ise(inst, sched).ok
        slow = Schedule(
            calibrations=sched.calibrations,
            placements=sched.placements,
            speed=1.0,
        )
        # At speed 1 it ends at 14 > calibration end: violation.
        report = validate_ise(inst, slow)
        assert report.by_kind(ViolationKind.NO_CALIBRATION)


class TestFailureInjection:
    """Each mutation of a feasible schedule must trip the right violation."""

    def test_missing_job(self, instance, good_schedule, t10):
        partial = Schedule(
            calibrations=good_schedule.calibrations,
            placements=good_schedule.placements[:1],
        )
        report = validate_ise(instance, partial)
        assert report.by_kind(ViolationKind.MISSING_JOB)
        assert validate_ise(instance, partial, require_all_jobs=False).ok

    def test_unknown_job(self, instance, good_schedule):
        extra = Schedule(
            calibrations=good_schedule.calibrations,
            placements=good_schedule.placements
            + (ScheduledJob(2.5, 0, 99),),
        )
        report = validate_ise(instance, extra)
        assert report.by_kind(ViolationKind.UNKNOWN_JOB)

    def test_early_start(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(-1.0, 0),), 1, t10
            ),
            placements=(
                ScheduledJob(-1.0, 0, 0),  # before release 0
                ScheduledJob(4.0, 0, 1),
            ),
        )
        report = validate_ise(instance, sched)
        assert report.by_kind(ViolationKind.RELEASE)

    def test_deadline_miss(self, t10):
        jobs = (Job(0, 0.0, 25.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(23.0, 0),), 1, t10),
            placements=(ScheduledJob(23.0, 0, 0),),
        )
        report = validate_ise(inst, sched)
        assert report.by_kind(ViolationKind.DEADLINE)

    def test_no_enclosing_calibration(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(2.0, 0),), 1, t10),
            placements=(
                ScheduledJob(10.0, 0, 0),  # ends at 13 > 12: crosses out
                ScheduledJob(5.0, 0, 1),
            ),
        )
        report = validate_ise(instance, sched)
        assert report.by_kind(ViolationKind.NO_CALIBRATION)

    def test_job_overlap(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(2.0, 0),), 1, t10),
            placements=(
                ScheduledJob(2.0, 0, 0),   # [2, 5)
                ScheduledJob(4.0, 0, 1),   # overlaps
            ),
        )
        report = validate_ise(instance, sched)
        assert report.by_kind(ViolationKind.JOB_OVERLAP)

    def test_calibration_overlap(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(2.0, 0), Calibration(8.0, 0)), 1, t10
            ),
            placements=(
                ScheduledJob(2.0, 0, 0),
                ScheduledJob(5.0, 0, 1),
            ),
        )
        report = validate_ise(instance, sched)
        assert report.by_kind(ViolationKind.CALIBRATION_OVERLAP)

    def test_machine_budget(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(2.0, 0), Calibration(2.0, 1)), 2, t10
            ),
            placements=(
                ScheduledJob(2.0, 0, 0),
                ScheduledJob(2.0, 1, 1),
            ),
        )
        assert validate_ise(instance, sched, max_machines=2).ok
        report = validate_ise(instance, sched, max_machines=1)
        assert report.by_kind(ViolationKind.MACHINE_BUDGET)

    def test_check_raises_with_report(self, instance, good_schedule):
        partial = Schedule(
            calibrations=good_schedule.calibrations,
            placements=good_schedule.placements[:1],
        )
        with pytest.raises(InfeasibleScheduleError) as err:
            check_ise(instance, partial, context="unit test")
        assert "unit test" in str(err.value)
        assert err.value.report is not None


class TestTiseRestriction:
    def test_tise_violation_detected(self, t10):
        # Window [5, 20): calibration [2, 12) contains the execution but not
        # the TISE containment (2 < 5).
        jobs = (Job(0, 5.0, 20.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(2.0, 0),), 1, t10),
            placements=(ScheduledJob(6.0, 0, 0),),
        )
        assert validate_ise(inst, sched).ok
        report = validate_tise(inst, sched)
        assert report.by_kind(ViolationKind.TISE_WINDOW)
        with pytest.raises(InfeasibleScheduleError):
            check_tise(inst, sched)

    def test_tise_boundary_equality_ok(self, t10):
        # r_j == t and t + T == d_j: allowed by the restriction.
        jobs = (Job(0, 2.0, 12.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(2.0, 0),), 1, t10),
            placements=(ScheduledJob(6.0, 0, 0),),
        )
        assert validate_tise(inst, sched).ok


class TestReportFormatting:
    def test_summary_counts(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule((), 0, t10),
            placements=(),
        )
        report = validate_ise(instance, sched)
        assert not report.ok
        assert "missing_job=2" in report.summary()
        assert not bool(report)

    def test_feasible_summary(self, instance, good_schedule):
        assert validate_ise(instance, good_schedule).summary() == "feasible"

    def test_detail_names_violations(self, instance, t10):
        sched = Schedule(
            calibrations=CalibrationSchedule((), 0, t10),
            placements=(),
        )
        report = validate_ise(instance, sched)
        detail = report.detail()
        assert "[missing_job]" in detail
        assert "more" not in detail  # both violations fit the default limit

    def test_detail_truncates_honestly(self, t10):
        jobs = tuple(
            Job(job_id=i, release=0.0, deadline=25.0, processing=1.0)
            for i in range(8)
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((), 0, t10),
            placements=(),
        )
        report = validate_ise(inst, sched)
        assert len(report.violations) == 8
        detail = report.detail(limit=5)
        assert detail.count("[missing_job]") == 5
        assert "... and 3 more" in detail

    def test_detail_feasible(self, instance, good_schedule):
        assert validate_ise(instance, good_schedule).detail() == "feasible"
