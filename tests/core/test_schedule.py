"""Unit tests for Schedule: placements, pruning, merging, compaction."""

from __future__ import annotations

import pytest

from repro.core import (
    Calibration,
    CalibrationSchedule,
    InvalidScheduleError,
    Schedule,
    ScheduledJob,
)
from repro.core.schedule import empty_schedule


def _cals(*entries, machines=2, T=10.0):
    return CalibrationSchedule(
        calibrations=tuple(Calibration(s, m) for s, m in entries),
        num_machines=machines,
        calibration_length=T,
    )


class TestScheduleConstruction:
    def test_duplicate_placement_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(
                calibrations=_cals((0.0, 0)),
                placements=(
                    ScheduledJob(0.0, 0, 1),
                    ScheduledJob(2.0, 0, 1),
                ),
            )

    def test_machine_out_of_pool_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(
                calibrations=_cals((0.0, 0), machines=1),
                placements=(ScheduledJob(0.0, 5, 1),),
            )

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(calibrations=_cals((0.0, 0)), placements=(), speed=0.0)

    def test_accessors(self):
        sched = Schedule(
            calibrations=_cals((0.0, 0), (0.0, 1)),
            placements=(ScheduledJob(1.0, 0, 7), ScheduledJob(2.0, 1, 8)),
        )
        assert sched.num_machines == 2
        assert sched.num_calibrations == 2
        assert sched.placement_of(7).machine == 0
        with pytest.raises(KeyError):
            sched.placement_of(99)
        assert sched.scheduled_job_ids() == frozenset({7, 8})
        assert len(sched.jobs_on_machine(1)) == 1


class TestEnclosingCalibration:
    def test_found(self):
        sched = Schedule(
            calibrations=_cals((0.0, 0), (20.0, 0)),
            placements=(ScheduledJob(21.0, 0, 1),),
        )
        cal = sched.enclosing_calibration(sched.placement_of(1), processing=3.0)
        assert cal is not None and cal.start == 20.0

    def test_respects_speed(self):
        # p=8 at speed 2 -> duration 4, fits in [0, 10); at speed 1 it
        # crosses nothing here but check the boundary case p=12.
        sched = Schedule(
            calibrations=_cals((0.0, 0)),
            placements=(ScheduledJob(0.0, 0, 1),),
            speed=2.0,
        )
        assert sched.enclosing_calibration(sched.placement_of(1), 8.0) is not None
        # Duration 12/2 = 6 <= 10: still inside.
        assert sched.enclosing_calibration(sched.placement_of(1), 12.0) is not None

    def test_not_found_when_crossing(self):
        sched = Schedule(
            calibrations=_cals((0.0, 0)),
            placements=(ScheduledJob(8.0, 0, 1),),
        )
        assert sched.enclosing_calibration(sched.placement_of(1), 5.0) is None

    def test_wrong_machine_not_found(self):
        sched = Schedule(
            calibrations=_cals((0.0, 1)),
            placements=(ScheduledJob(1.0, 0, 1),),
        )
        assert sched.enclosing_calibration(sched.placement_of(1), 2.0) is None


class TestPruneAndCompact:
    def test_prune_drops_empty(self):
        sched = Schedule(
            calibrations=_cals((0.0, 0), (30.0, 0), (0.0, 1)),
            placements=(ScheduledJob(1.0, 0, 1),),
        )
        pruned = sched.prune_empty_calibrations({1: 2.0})
        assert pruned.num_calibrations == 1
        assert pruned.calibrations.calibrations[0].start == 0.0
        # Pool size unchanged by pruning.
        assert pruned.num_machines == 2

    def test_prune_raises_on_uncovered_job(self):
        sched = Schedule(
            calibrations=_cals((0.0, 0)),
            placements=(ScheduledJob(8.0, 0, 1),),
        )
        with pytest.raises(InvalidScheduleError):
            sched.prune_empty_calibrations({1: 5.0})

    def test_compact_renumbers(self):
        sched = Schedule(
            calibrations=CalibrationSchedule(
                calibrations=(Calibration(0.0, 3), Calibration(0.0, 7)),
                num_machines=10,
                calibration_length=10.0,
            ),
            placements=(ScheduledJob(1.0, 3, 1),),
        )
        compacted = sched.compact_machines()
        assert compacted.num_machines == 2
        assert {c.machine for c in compacted.calibrations} == {0, 1}
        assert compacted.placement_of(1).machine == 0


class TestMerge:
    def test_disjoint_union(self):
        a = Schedule(
            calibrations=_cals((0.0, 0), machines=1),
            placements=(ScheduledJob(0.0, 0, 1),),
        )
        b = Schedule(
            calibrations=_cals((5.0, 0), machines=2),
            placements=(ScheduledJob(5.0, 0, 2),),
        )
        merged = a.merged_with(b)
        assert merged.num_machines == 3
        assert merged.placement_of(2).machine == 1
        assert merged.num_calibrations == 2

    def test_speed_mismatch_rejected(self):
        a = empty_schedule(10.0, speed=1.0)
        b = empty_schedule(10.0, speed=2.0)
        with pytest.raises(InvalidScheduleError):
            a.merged_with(b)

    def test_empty_schedule(self):
        sched = empty_schedule(10.0, num_machines=3)
        assert sched.num_calibrations == 0
        assert sched.num_machines == 3
        assert list(sched) == []
