"""Tests for the Lemma 3 potential calibration points."""

from __future__ import annotations

import pytest

from repro.core import Job
from repro.longwindow import potential_calibration_points, raw_calibration_points
from repro.longwindow.tise import tise_feasible_for


def test_raw_points_structure():
    T = 10.0
    jobs = (Job(0, 0.0, 40.0, 1.0), Job(1, 3.0, 30.0, 1.0))
    points = raw_calibration_points(jobs, T)
    # r + kT for k = 0..n (n = 2).
    expected = sorted({0.0, 10.0, 20.0, 3.0, 13.0, 23.0})
    assert points == expected


def test_raw_points_deduplicate():
    T = 10.0
    jobs = (Job(0, 0.0, 40.0, 1.0), Job(1, 10.0, 40.0, 1.0))
    points = raw_calibration_points(jobs, T)
    # r_1 + T == r_2: the shared value appears once.
    assert len(points) == len(set(points))
    assert 10.0 in points


def test_raw_points_size_bound():
    T = 5.0
    jobs = tuple(Job(i, 1.7 * i, 1.7 * i + 2 * T, 1.0) for i in range(6))
    points = raw_calibration_points(jobs, T)
    assert len(points) <= len(jobs) * (len(jobs) + 1)


def test_pruning_keeps_only_serving_points():
    T = 10.0
    jobs = (Job(0, 0.0, 25.0, 1.0), Job(1, 100.0, 125.0, 1.0))
    pruned = potential_calibration_points(jobs, T)
    for t in pruned:
        assert any(tise_feasible_for(j, t, T) for j in jobs)
    # The unpruned set contains useless points (e.g. 20 > d_0 - T = 15).
    unpruned = potential_calibration_points(jobs, T, prune=False)
    assert set(pruned) == {0.0, 10.0, 100.0, 110.0}
    assert len(pruned) < len(unpruned)


def test_release_always_feasible_for_long_jobs():
    """Any long job's release time survives pruning (r + T <= r + 2T <= d)."""
    T = 10.0
    jobs = tuple(Job(i, 5.0 * i, 5.0 * i + 2 * T + i, 1.0) for i in range(4))
    points = potential_calibration_points(jobs, T)
    for job in jobs:
        assert any(abs(t - job.release) < 1e-9 for t in points)


def test_empty_jobs():
    assert potential_calibration_points((), 10.0) == []
    assert raw_calibration_points((), 10.0) == []


def test_max_packed_override():
    T = 10.0
    jobs = (Job(0, 0.0, 40.0, 1.0),)
    points = raw_calibration_points(jobs, T, max_packed=3)
    assert points == [0.0, 10.0, 20.0, 30.0]
