"""Tests for the Lemma 13 machine-to-speed transformation and Theorem 14."""

from __future__ import annotations

import pytest

from repro.core import InvalidScheduleError, validate_ise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowSolver, machines_to_speed


@pytest.fixture(params=range(4))
def solved(request):
    gen = long_window_instance(
        n=12, machines=2, calibration_length=10.0, seed=request.param
    )
    result = LongWindowSolver().solve(gen.instance)
    return gen, result


class TestLemma13:
    def test_valid_at_doubled_group_speed(self, solved):
        gen, result = solved
        c = 4
        traded = machines_to_speed(gen.instance, result.schedule, c)
        assert traded.schedule.speed == pytest.approx(2.0 * c)
        report = validate_ise(gen.instance, traded.schedule)
        assert report.ok, report.summary()

    def test_machine_count_is_ceil_pool_over_c(self, solved):
        gen, result = solved
        pool = result.schedule.num_machines
        for c in (1, 3, pool):
            traded = machines_to_speed(gen.instance, result.schedule, c)
            assert traded.schedule.num_machines == -(-pool // c)

    def test_calibrations_never_increase(self, solved):
        gen, result = solved
        for c in (2, 6, 18):
            traded = machines_to_speed(gen.instance, result.schedule, c)
            assert traded.target_calibrations <= traded.source_calibrations
            assert traded.source_calibrations == result.num_calibrations

    def test_all_jobs_preserved(self, solved):
        gen, result = solved
        traded = machines_to_speed(gen.instance, result.schedule, 5)
        assert traded.schedule.scheduled_job_ids() == {
            j.job_id for j in gen.instance.jobs
        }

    def test_group_size_one(self, solved):
        """c = 1: same machine count, speed 2 — still valid."""
        gen, result = solved
        traded = machines_to_speed(gen.instance, result.schedule, 1)
        assert traded.schedule.speed == pytest.approx(2.0)
        assert validate_ise(gen.instance, traded.schedule).ok


class TestTheorem14:
    @pytest.mark.parametrize("seed", range(3))
    def test_m_machines_speed_36(self, seed):
        gen = long_window_instance(
            n=10, machines=2, calibration_length=10.0, seed=seed
        )
        solver = LongWindowSolver()
        base, traded = solver.solve_with_speed(gen.instance)
        # Theorem 14: m machines at speed 36 with <= 12 C* calibrations.
        assert traded.schedule.num_machines <= gen.instance.machines
        assert traded.schedule.speed == pytest.approx(36.0)
        assert traded.target_calibrations <= base.num_calibrations
        assert validate_ise(gen.instance, traded.schedule).ok


class TestErrors:
    def test_rejects_speed_augmented_input(self, solved):
        gen, result = solved
        traded = machines_to_speed(gen.instance, result.schedule, 2)
        with pytest.raises(InvalidScheduleError):
            machines_to_speed(gen.instance, traded.schedule, 2)

    def test_rejects_bad_group_size(self, solved):
        gen, result = solved
        with pytest.raises(ValueError):
            machines_to_speed(gen.instance, result.schedule, 0)
