"""Tests for the TISE constraint and the Lemma 2 transformation."""

from __future__ import annotations

import pytest

from repro.core import (
    Calibration,
    CalibrationSchedule,
    Instance,
    InvalidScheduleError,
    Job,
    Schedule,
    ScheduledJob,
    validate_ise,
    validate_tise,
)
from repro.instances import figure1_instance, long_window_instance
from repro.longwindow import ise_to_tise, tise_feasible_for


class TestTiseConstraint:
    def test_containment_cases(self):
        T = 10.0
        job = Job(0, 5.0, 30.0, 2.0)
        assert tise_feasible_for(job, 5.0, T)     # starts at release
        assert tise_feasible_for(job, 20.0, T)    # ends at deadline
        assert tise_feasible_for(job, 12.0, T)
        assert not tise_feasible_for(job, 4.0, T)   # starts early
        assert not tise_feasible_for(job, 21.0, T)  # ends late

    def test_short_window_job_never_feasible(self):
        T = 10.0
        job = Job(0, 0.0, 8.0, 2.0)  # window < T
        for t in (0.0, -2.0, 1.0):
            assert not tise_feasible_for(job, t, T)


class TestLemma2OnFigure1:
    def test_reproduces_figure1_actions(self):
        instance, schedule = figure1_instance()
        tise, traces = ise_to_tise(instance, schedule)
        actions = {t.job_id: t.action for t in traces}
        assert actions == {
            1: "advance",
            2: "keep",
            3: "keep",
            4: "keep",
            5: "advance",
            6: "keep",
            7: "delay",
        }

    def test_exact_factor_three(self):
        instance, schedule = figure1_instance()
        tise, _ = ise_to_tise(instance, schedule)
        assert tise.num_machines == 3 * schedule.num_machines
        assert tise.num_calibrations == 3 * schedule.num_calibrations

    def test_output_is_tise_valid(self):
        instance, schedule = figure1_instance()
        tise, _ = ise_to_tise(instance, schedule)
        assert validate_tise(instance, tise).ok

    def test_machine_layout(self):
        instance, schedule = figure1_instance()
        _, traces = ise_to_tise(instance, schedule)
        for trace in traces:
            base = 3 * trace.source_machine
            expected = {
                "keep": base,
                "delay": base + 1,
                "advance": base + 2,
            }[trace.action]
            assert trace.target_machine == expected
            shift = {"keep": 0.0, "delay": 10.0, "advance": -10.0}[trace.action]
            assert trace.new_start == pytest.approx(trace.old_start + shift)


class TestLemma2OnGeneratedInstances:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("machines", [1, 2, 3])
    def test_witness_transforms_feasibly(self, seed, machines):
        gen = long_window_instance(
            n=12, machines=machines, calibration_length=10.0, seed=seed
        )
        assert validate_ise(gen.instance, gen.witness).ok
        tise, traces = ise_to_tise(gen.instance, gen.witness)
        assert validate_tise(gen.instance, tise).ok
        assert tise.num_machines == 3 * machines
        assert tise.num_calibrations == 3 * gen.witness_calibrations
        assert len(traces) == gen.instance.n


class TestLemma2Errors:
    def test_rejects_short_window_jobs(self, t10):
        jobs = (Job(0, 0.0, 15.0, 2.0),)  # window 15 < 2T = 20
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        with pytest.raises(InvalidScheduleError):
            ise_to_tise(inst, sched)

    def test_rejects_uncovered_job(self, t10):
        jobs = (Job(0, 0.0, 25.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        with pytest.raises(InvalidScheduleError):
            ise_to_tise(inst, sched)
