"""Tests machine-checking Lemma 3 via the canonicalization construction."""

from __future__ import annotations

import pytest

from repro.core import (
    Calibration,
    CalibrationSchedule,
    Instance,
    Job,
    Schedule,
    ScheduledJob,
    validate_tise,
)
from repro.instances import long_window_instance
from repro.longwindow import (
    LongWindowSolver,
    canonicalize,
    ise_to_tise,
    raw_calibration_points,
)


class TestLemma3Construction:
    def test_slides_to_release(self, t10):
        jobs = (Job(0, 3.0, 30.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(7.0, 0),), 1, t10),
            placements=(ScheduledJob(8.0, 0, 0),),
        )
        assert validate_tise(inst, sched).ok
        result = canonicalize(inst, sched)
        cal = result.schedule.calibrations.calibrations[0]
        assert cal.start == pytest.approx(3.0)  # slid onto the release
        assert result.moved_calibrations == 1
        assert result.total_shift == pytest.approx(4.0)
        # The job moved with the calibration.
        assert result.schedule.placement_of(0).start == pytest.approx(4.0)
        assert validate_tise(inst, result.schedule).ok

    def test_packs_against_previous_calibration(self, t10):
        jobs = (
            Job(0, 0.0, 30.0, 2.0),
            Job(1, 2.0, 40.0, 2.0),
        )
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0), Calibration(15.0, 0)), 1, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(15.0, 0, 1)),
        )
        result = canonicalize(inst, sched)
        starts = [c.start for c in result.schedule.calibrations]
        # Second calibration hits the end of the first (10.0) — the release
        # at 2.0 is below, but sliding stops at whichever limit comes FIRST
        # from above: max(prev_end=10, release_floor=2) = 10.
        assert starts == [0.0, 10.0]
        assert validate_tise(inst, result.schedule).ok

    def test_fixpoint(self, t10):
        """Canonicalizing twice changes nothing."""
        gen = long_window_instance(10, 2, 10.0, 3)
        tise, _ = ise_to_tise(gen.instance, gen.witness)
        once = canonicalize(gen.instance, tise)
        twice = canonicalize(gen.instance, once.schedule)
        assert twice.moved_calibrations == 0
        assert twice.total_shift == pytest.approx(0.0)
        assert (
            once.schedule.calibrations.calibrations
            == twice.schedule.calibrations.calibrations
        )


class TestLemma3Statement:
    @pytest.mark.parametrize("seed", range(5))
    def test_canonical_starts_are_potential_points(self, seed):
        """After canonicalization, every job-carrying calibration starts at
        a point of the Lemma 3 set {r_j + k*T} — the lemma's content."""
        T = 10.0
        gen = long_window_instance(10, 2, T, seed)
        result = LongWindowSolver().solve(gen.instance)
        canonical = canonicalize(gen.instance, result.schedule)
        assert validate_tise(gen.instance, canonical.schedule).ok
        points = raw_calibration_points(gen.instance.jobs, T)
        occupied = {
            (c.start, c.machine)
            for p in canonical.schedule.placements
            for c in [
                canonical.schedule.enclosing_calibration(
                    p, gen.instance.job_by_id(p.job_id).processing
                )
            ]
            if c is not None
        }
        for start, _ in occupied:
            assert any(abs(start - t) < 1e-6 for t in points), (
                f"canonical start {start} is not of the form r_j + k*T"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_count_and_feasibility(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        result = LongWindowSolver().solve(gen.instance)
        canonical = canonicalize(gen.instance, result.schedule)
        assert (
            canonical.schedule.num_calibrations == result.num_calibrations
        )
        assert validate_tise(gen.instance, canonical.schedule).ok
        assert canonical.schedule.scheduled_job_ids() == {
            j.job_id for j in gen.instance.jobs
        }

    def test_only_moves_earlier(self):
        gen = long_window_instance(10, 1, 10.0, 7)
        result = LongWindowSolver().solve(gen.instance)
        canonical = canonicalize(gen.instance, result.schedule)
        before = sorted(
            (c.machine, c.start) for c in result.schedule.calibrations
        )
        after = sorted(
            (c.machine, c.start) for c in canonical.schedule.calibrations
        )
        # Per machine in order, starts never increase.
        for (m1, s1), (m2, s2) in zip(before, after):
            assert m1 == m2
            assert s2 <= s1 + 1e-9
