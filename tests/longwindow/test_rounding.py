"""Tests for Algorithm 1 (greedy calibration rounding) and Figure 2."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.instances import figure2_fractional_calibrations, long_window_instance
from repro.longwindow import (
    round_calibrations,
    rounded_start_times,
    solve_tise_lp,
)


class TestFigure2:
    def test_emission_pattern(self):
        """Figure 2: one calibration after the second fractional point, two
        at the fourth."""
        fractional = figure2_fractional_calibrations()
        starts = rounded_start_times(fractional)
        points = sorted(fractional)
        assert starts == [points[1], points[3], points[3]]

    def test_total_count_is_floor_mass_over_half(self):
        fractional = figure2_fractional_calibrations()
        mass = sum(fractional.values())  # 1.55
        starts = rounded_start_times(fractional)
        assert len(starts) == int(mass / 0.5)  # 3


class TestRoundedStartTimes:
    def test_empty(self):
        assert rounded_start_times({}) == []

    def test_single_half_mass(self):
        assert rounded_start_times({5.0: 0.5}) == [5.0]

    def test_just_below_half_emits_nothing(self):
        assert rounded_start_times({5.0: 0.49}) == []

    def test_accumulation_across_points(self):
        starts = rounded_start_times({0.0: 0.2, 1.0: 0.2, 2.0: 0.2})
        assert starts == [2.0]

    def test_large_single_mass(self):
        # 2.3 mass at one point: emits floor(2.3 / 0.5) = 4 calibrations.
        assert rounded_start_times({3.0: 2.3}) == [3.0] * 4

    def test_exact_boundary_with_float_accumulation(self):
        # Ten masses of 0.05 sum to 0.5 "on paper" despite float error.
        fractional = [(float(i), 0.05) for i in range(10)]
        starts = rounded_start_times(fractional)
        assert starts == [9.0]

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            rounded_start_times({0.0: -0.1})

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            rounded_start_times({0.0: 1.0}, threshold=0.0)

    def test_custom_threshold(self):
        # Threshold 0.25 emits twice as many calibrations.
        fractional = {0.0: 1.0}
        assert len(rounded_start_times(fractional, threshold=0.25)) == 4
        assert len(rounded_start_times(fractional, threshold=1.0)) == 1

    @given(
        masses=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=20),
    )
    def test_lemma7_count_bound(self, masses):
        """#emitted = floor(total / threshold) <= 2 * total at threshold 1/2
        (the Lemma 7 calibration bound)."""
        fractional = [(float(i), m) for i, m in enumerate(masses)]
        starts = rounded_start_times(fractional)
        total = sum(masses)
        assert len(starts) <= 2.0 * total + 1e-6
        assert len(starts) >= int(total / 0.5) - 1  # float-boundary slack

    @given(masses=st.lists(st.floats(0.0, 1.5), min_size=1, max_size=15))
    def test_emissions_nondecreasing(self, masses):
        fractional = [(float(i), m) for i, m in enumerate(masses)]
        starts = rounded_start_times(fractional)
        assert starts == sorted(starts)


class TestRoundCalibrations:
    @pytest.mark.parametrize("seed", range(4))
    def test_round_robin_output_valid(self, seed):
        """Rounding an actual LP solution yields non-overlapping calibrations
        on 3m' machines (Lemma 4)."""
        gen = long_window_instance(
            n=12, machines=2, calibration_length=10.0, seed=seed
        )
        m_prime = 3 * gen.instance.machines
        lp = solve_tise_lp(gen.instance.jobs, 10.0, m_prime)
        result = round_calibrations(lp.calibrations, m_prime, 10.0)
        assert result.schedule.num_machines == 3 * m_prime
        assert result.schedule.overlap_violations() == []
        # Lemma 7: at most 2x the fractional mass.
        assert result.num_calibrations <= 2 * result.fractional_mass + 1e-6
        assert result.inflation <= 2.0 + 1e-6

    def test_stats_fields(self):
        result = round_calibrations({0.0: 1.0}, machine_budget=1, calibration_length=5.0)
        assert result.num_calibrations == 2
        assert result.fractional_mass == pytest.approx(1.0)
        assert result.threshold == 0.5
        assert result.start_times == (0.0, 0.0)
