"""Equivalence and structure tests for the compressed TISE LP.

The telescoped constraint-(1) encoding and the domination prune are pure
reformulations: on every instance the compressed LP must reach the same
optimum as the legacy literal encoding (and the same Algorithm 1 rounded
calibration count), while being strictly smaller.  These tests pin that,
plus the supporting machinery: per-job feasible ranges, the point prune,
nameless builds, and the indexed ``job_coverage``.
"""

from __future__ import annotations

import pytest

from repro.core.tolerance import EPS, close
from repro.instances import long_window_instance
from repro.longwindow import (
    build_tise_lp,
    potential_calibration_points,
    prune_dominated_points,
    raw_calibration_points,
    round_calibrations,
    solve_tise_lp,
    tise_feasible_for,
    tise_feasible_range,
)

# The TISE LP requires every window to fit a calibration (|window| >= T),
# so the suite draws from the long-window generator across sizes, machine
# counts, calibration lengths, and seeds.
SUITE = [
    (6, 1, 5.0, 0),
    (8, 2, 10.0, 1),
    (10, 2, 10.0, 2),
    (12, 3, 5.0, 3),
    (14, 2, 10.0, 4),
    (16, 2, 2.5, 5),
]


def _case_id(case):
    n, machines, T, seed = case
    return f"n{n}-m{machines}-T{T:g}-s{seed}"


@pytest.fixture(params=SUITE, ids=_case_id)
def jobs_and_T(request):
    n, machines, T, seed = request.param
    instance = long_window_instance(n, machines, T, seed=seed).instance
    return instance.jobs, instance.calibration_length


class TestFormulationEquivalence:
    @pytest.mark.parametrize("machine_budget", [1, 2, 3])
    def test_same_objective(self, jobs_and_T, machine_budget):
        jobs, T = jobs_and_T
        legacy = solve_tise_lp(jobs, T, machine_budget, formulation="legacy")
        compressed = solve_tise_lp(
            jobs, T, machine_budget, formulation="compressed"
        )
        assert close(legacy.objective, compressed.objective), (
            f"legacy {legacy.objective!r} vs compressed "
            f"{compressed.objective!r}"
        )

    def test_same_rounded_calibration_count(self, jobs_and_T):
        jobs, T = jobs_and_T
        legacy = solve_tise_lp(jobs, T, 3, formulation="legacy")
        compressed = solve_tise_lp(jobs, T, 3, formulation="compressed")
        rounded_legacy = round_calibrations(legacy.calibrations, 3, T)
        rounded_compressed = round_calibrations(compressed.calibrations, 3, T)
        assert (
            rounded_legacy.schedule.num_calibrations
            == rounded_compressed.schedule.num_calibrations
        )

    def test_compressed_is_never_larger(self, jobs_and_T):
        jobs, T = jobs_and_T
        legacy = build_tise_lp(jobs, T, 3, formulation="legacy", names=False)
        compressed = build_tise_lp(
            jobs, T, 3, formulation="compressed", names=False
        )
        assert compressed.stats["nnz"] <= legacy.stats["nnz"]
        assert compressed.stats["machine_nnz"] <= legacy.stats["machine_nnz"]
        assert compressed.stats["points"] <= legacy.stats["points"]

    def test_unknown_formulation_rejected(self, jobs_and_T):
        jobs, T = jobs_and_T
        with pytest.raises(ValueError, match="formulation"):
            build_tise_lp(jobs, T, 2, formulation="quantum")


class TestDominationPrune:
    def test_prune_preserves_lp_optimum(self, jobs_and_T):
        jobs, T = jobs_and_T
        points = potential_calibration_points(jobs, T)
        pruned = prune_dominated_points(points, jobs, T)
        full = solve_tise_lp(jobs, T, 2, points=points, formulation="legacy")
        thin = solve_tise_lp(jobs, T, 2, points=pruned, formulation="legacy")
        assert close(full.objective, thin.objective)

    def test_prune_returns_sorted_subset(self, jobs_and_T):
        jobs, T = jobs_and_T
        points = potential_calibration_points(jobs, T)
        pruned = prune_dominated_points(points, jobs, T)
        assert set(pruned) <= set(points)
        assert pruned == sorted(pruned)

    def test_prune_is_idempotent(self, jobs_and_T):
        jobs, T = jobs_and_T
        points = potential_calibration_points(jobs, T)
        once = prune_dominated_points(points, jobs, T)
        twice = prune_dominated_points(once, jobs, T)
        assert once == twice


class TestFeasibleRange:
    def test_range_matches_bruteforce_scan(self, jobs_and_T):
        jobs, T = jobs_and_T
        points = raw_calibration_points(jobs, T)
        for job in jobs:
            lo, hi = tise_feasible_range(job, points, T)
            feasible = [
                i
                for i, t in enumerate(points)
                if tise_feasible_for(job, t, T, EPS)
            ]
            expected = list(range(lo, hi))
            assert feasible == expected, f"job {job.job_id}"

    def test_empty_range_when_no_point_fits(self):
        instance = long_window_instance(6, 2, 10.0, seed=5).instance
        T = instance.calibration_length
        job = instance.jobs[0]
        # Points far outside the job's window: empty feasible range.
        far = [job.deadline + T, job.deadline + 2 * T]
        lo, hi = tise_feasible_range(job, far, T)
        assert lo == hi


class TestSolutionIndexes:
    def test_job_coverage_matches_manual_sum(self, jobs_and_T):
        jobs, T = jobs_and_T
        solution = solve_tise_lp(jobs, T, 3)
        for job in jobs:
            manual = sum(
                frac
                for (job_id, _), frac in solution.assignments.items()
                if job_id == job.job_id
            )
            assert solution.job_coverage(job.job_id) == pytest.approx(manual)
        assert solution.job_coverage(10_000) == 0.0

    def test_nameless_build_still_reports_names(self, jobs_and_T):
        jobs, T = jobs_and_T
        named = build_tise_lp(jobs, T, 2, names=True)
        nameless = build_tise_lp(jobs, T, 2, names=False)
        assert not nameless.lp.track_names
        assert named.lp.track_names
        # The fallback synthesizes positional names instead of crashing.
        assert nameless.lp.variable_name(0) == "x0"
        assert named.lp.variable_name(0) != "x0" or named.lp.num_cols == 0

    def test_stats_attached_to_solution(self, jobs_and_T):
        jobs, T = jobs_and_T
        solution = solve_tise_lp(jobs, T, 2)
        for key in ("rows", "cols", "nnz", "machine_nnz", "points"):
            assert key in solution.stats
            assert solution.stats[key] >= 0
