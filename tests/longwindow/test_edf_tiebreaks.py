"""EDF tie-breaking and determinism tests (Algorithm 2 details)."""

from __future__ import annotations

import pytest

from repro.core import Calibration, CalibrationSchedule, Job
from repro.longwindow import assign_jobs_edf, fractional_edf


def _calendar(*starts, machines=1, T=10.0):
    return CalibrationSchedule(
        calibrations=tuple(
            Calibration(s, m) for s, m in starts
        ),
        num_machines=machines,
        calibration_length=T,
    )


class TestTieBreaks:
    def test_equal_deadlines_break_by_id(self):
        """The paper says ties broken arbitrarily; the implementation pins
        job-id order so runs are reproducible."""
        T = 10.0
        jobs = (
            Job(5, 0.0, 30.0, 3.0),
            Job(2, 0.0, 30.0, 3.0),
            Job(9, 0.0, 30.0, 3.0),
        )
        calendar = _calendar((0.0, 0))
        schedule = assign_jobs_edf(jobs, calendar, mirror=False)
        starts = {p.job_id: p.start for p in schedule.placements}
        assert starts[2] < starts[5] < starts[9]

    def test_same_time_calibrations_filled_in_machine_order(self):
        T = 10.0
        jobs = (
            Job(0, 0.0, 30.0, 9.0),
            Job(1, 0.0, 30.0, 9.0),
        )
        calendar = _calendar((0.0, 0), (0.0, 1), machines=2)
        schedule = assign_jobs_edf(jobs, calendar, mirror=False)
        # Job 0 (EDF-first by id at equal deadlines) lands on machine 0.
        assert schedule.placement_of(0).machine == 0
        assert schedule.placement_of(1).machine == 1

    def test_deterministic_across_runs(self):
        T = 10.0
        jobs = tuple(Job(i, 0.0, 30.0 + i, 2.0 + 0.1 * i) for i in range(6))
        calendar = _calendar((0.0, 0), (10.0, 0))
        a = assign_jobs_edf(jobs, calendar)
        b = assign_jobs_edf(jobs, calendar)
        assert a.placements == b.placements


class TestFractionalEDFDetails:
    def test_splits_job_across_calibrations(self):
        T = 10.0
        jobs = (
            Job(0, 0.0, 40.0, 8.0),
            Job(1, 0.0, 41.0, 8.0),
        )
        calendar = _calendar((0.0, 0), (10.0, 0))
        result = fractional_edf(jobs, calendar)
        assert result.complete
        # Job 1 gets the remaining 2/8 of calibration 0 and finishes in 1.
        frac_0 = result.fractions.get((1, 0), 0.0)
        frac_1 = result.fractions.get((1, 1), 0.0)
        assert frac_0 == pytest.approx(0.25)
        assert frac_1 == pytest.approx(0.75)

    def test_capacity_exactly_consumed(self):
        T = 10.0
        jobs = tuple(Job(i, 0.0, 50.0, 5.0) for i in range(4))
        calendar = _calendar((0.0, 0), (10.0, 0))
        result = fractional_edf(jobs, calendar)
        assert result.complete
        for pos in (0, 1):
            load = sum(
                frac * 5.0
                for (jid, p), frac in result.fractions.items()
                if p == pos
            )
            assert load == pytest.approx(T)
