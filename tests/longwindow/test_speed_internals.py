"""White-box tests for the Lemma 13 target-calendar construction."""

from __future__ import annotations

import pytest

from repro.longwindow.speed_tradeoff import _target_calendar


class TestTargetCalendar:
    def test_single_source(self):
        assert _target_calendar([5.0], 10.0) == [5.0]

    def test_back_to_back_sources(self):
        # Sources at 0 and 10: target walks 0 -> 10 -> stops.
        assert _target_calendar([0.0, 10.0], 10.0) == [0.0, 10.0]

    def test_gap_jump(self):
        # Sources at 0 and 100: after [0, 10) nothing is calibrated, so the
        # walk jumps to 100.
        assert _target_calendar([0.0, 100.0], 10.0) == [0.0, 100.0]

    def test_overlapping_sources_single_target(self):
        # Sources at 0 and 4 (different machines): target at 0 covers [0,10)
        # which contains instant 4; next step t=10 is inside [4, 14) so a
        # second target calibration at 10 covers the tail.
        assert _target_calendar([0.0, 4.0], 10.0) == [0.0, 10.0]

    def test_chain_of_offsets(self):
        # Sources at 0, 7, 14: walk 0 -> 10 (inside [7,17)) -> 20 (inside
        # [14, 24)) -> 30 is beyond everything.
        assert _target_calendar([0.0, 7.0, 14.0], 10.0) == [0.0, 10.0, 20.0]

    def test_empty(self):
        assert _target_calendar([], 10.0) == []

    def test_every_source_instant_covered(self):
        """The construction's defining property: each calibrated instant of
        any source is calibrated on the target."""
        import numpy as np

        T = 10.0
        rng = np.random.default_rng(3)
        starts = sorted(float(x) for x in rng.uniform(0, 200, size=15))
        calendar = _target_calendar(starts, T)

        def covered(t: float, cals: list[float]) -> bool:
            return any(c <= t < c + T for c in cals)

        probes = [s + frac * T for s in starts for frac in (0.0, 0.25, 0.5, 0.99)]
        for probe in probes:
            assert covered(probe, calendar), f"instant {probe} not covered"

    def test_calendar_is_overlap_free(self):
        import numpy as np

        T = 7.0
        rng = np.random.default_rng(9)
        starts = sorted(float(x) for x in rng.uniform(0, 80, size=12))
        calendar = _target_calendar(starts, T)
        for a, b in zip(calendar, calendar[1:]):
            assert b >= a + T - 1e-9

    def test_count_never_exceeds_sources(self):
        """Lemma 13's charging argument: |target| <= |source starts|."""
        import numpy as np

        for seed in range(10):
            rng = np.random.default_rng(seed)
            starts = sorted(float(x) for x in rng.uniform(0, 150, size=14))
            calendar = _target_calendar(starts, 10.0)
            assert len(calendar) <= len(starts)
