"""Tests for the alternative rounding schemes (ceiling and best-of-both)."""

from __future__ import annotations

import pytest

from repro.core import validate_tise
from repro.instances import figure2_fractional_calibrations, long_window_instance
from repro.longwindow import (
    LongWindowConfig,
    LongWindowSolver,
    naive_ceil_round,
    round_calibrations_ceil,
    solve_tise_lp,
)
from repro.theory import check_theorem12


class TestNaiveCeilRound:
    def test_counts(self):
        masses = figure2_fractional_calibrations()
        starts = naive_ceil_round(masses)
        # ceil(0.3) + ceil(0.25) + ceil(0.2) + ceil(0.8) = 4.
        assert len(starts) == 4

    def test_zero_mass_skipped(self):
        assert naive_ceil_round({0.0: 0.0, 1.0: 0.4}) == [1.0]

    def test_integer_mass_not_inflated(self):
        assert naive_ceil_round({2.0: 2.0}) == [2.0, 2.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            naive_ceil_round({0.0: -0.5})


class TestRoundCalibrationsCeil:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_calendar(self, seed):
        T = 10.0
        gen = long_window_instance(12, 2, T, seed)
        lp = solve_tise_lp(gen.instance.jobs, T, 6)
        result = round_calibrations_ceil(lp.calibrations, T)
        assert result.scheme == "ceil"
        assert result.schedule.overlap_violations() == []
        # Count bound: mass + support.
        assert result.num_calibrations <= lp.objective + result.support + 1e-6
        # Pointwise dominance over the fractional solution.
        for t, mass in lp.calibrations.items():
            count = sum(1 for s in result.start_times if abs(s - t) < 1e-9)
            assert count >= mass - 1e-9


class TestPipelineSchemes:
    @pytest.mark.parametrize("scheme", ["greedy", "ceil", "best"])
    @pytest.mark.parametrize("seed", range(3))
    def test_all_schemes_feasible(self, scheme, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        solver = LongWindowSolver(LongWindowConfig(rounding_scheme=scheme))
        result = solver.solve(gen.instance)
        report = validate_tise(gen.instance, result.schedule)
        assert report.ok, f"{scheme}: {report.summary()}"
        check = check_theorem12(gen.instance, result)
        assert check.holds, check.summary()

    @pytest.mark.parametrize("seed", range(3))
    def test_best_never_worse_than_either(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        results = {
            scheme: LongWindowSolver(
                LongWindowConfig(rounding_scheme=scheme)
            ).solve(gen.instance)
            for scheme in ("greedy", "ceil", "best")
        }
        best = results["best"].unpruned_calibrations
        assert best <= results["greedy"].unpruned_calibrations
        assert best <= results["ceil"].unpruned_calibrations

    def test_unknown_scheme_rejected(self):
        gen = long_window_instance(6, 1, 10.0, 0)
        solver = LongWindowSolver(LongWindowConfig(rounding_scheme="magic"))
        with pytest.raises(ValueError):
            solver.solve(gen.instance)
