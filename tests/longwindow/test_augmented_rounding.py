"""Tests for Algorithm 3 (augmented rounding), Lemma 5, Corollary 6, Figure 3."""

from __future__ import annotations

import pytest

from repro.instances import (
    figure2_fractional_calibrations,
    figure3_inputs,
    long_window_instance,
)
from repro.longwindow import augmented_round, rounded_start_times, solve_tise_lp


class TestFigure3:
    def test_same_calibrations_as_algorithm1(self):
        """Algorithm 3 creates exactly the calibrations Algorithm 1 would."""
        jobs, calibrations, assignments = figure3_inputs()
        result = augmented_round(jobs, calibrations, assignments, 10.0)
        assert list(result.assignment.calibration_starts) == rounded_start_times(
            calibrations
        )

    def test_job2_tail_discarded(self):
        """The figure's central event: job 2's delayed fraction is dropped."""
        jobs, calibrations, assignments = figure3_inputs()
        result = augmented_round(jobs, calibrations, assignments, 10.0)
        assert 2 in result.discarded
        assert result.discarded[2] > 0.0
        # Lemma 5: the discard never exceeds the carryover bound 1/2.
        assert result.discarded[2] <= 0.5 + 1e-9

    def test_job1_fully_covered(self):
        jobs, calibrations, assignments = figure3_inputs()
        result = augmented_round(jobs, calibrations, assignments, 10.0)
        assert result.assignment.coverage(1) >= 1.0 - 1e-6

    def test_lemma5_invariants_observed(self):
        jobs, calibrations, assignments = figure3_inputs()
        result = augmented_round(jobs, calibrations, assignments, 10.0)
        assert result.max_y_minus_carryover <= 1e-6
        assert result.max_carried_work_excess <= 1e-6


class TestCorollary6OnRealLPSolutions:
    """On genuine LP solutions (constraint (4) holds), Corollary 6 promises
    full coverage of every job and per-calibration load <= T."""

    @pytest.mark.parametrize("seed", range(5))
    def test_coverage_and_load(self, seed):
        T = 10.0
        gen = long_window_instance(n=10, machines=2, calibration_length=T, seed=seed)
        m_prime = 3 * gen.instance.machines
        lp = solve_tise_lp(gen.instance.jobs, T, m_prime)
        result = augmented_round(
            gen.instance.jobs, lp.calibrations, lp.assignments, T
        )
        processing = {j.job_id: j.processing for j in gen.instance.jobs}
        for job in gen.instance.jobs:
            assert result.assignment.coverage(job.job_id) >= 1.0 - 1e-6, (
                f"job {job.job_id} undercovered"
            )
        for k in range(len(result.assignment.calibration_starts)):
            load = result.assignment.calibration_load(k, processing)
            assert load <= T + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_capped_assignment_is_exact(self, seed):
        T = 10.0
        gen = long_window_instance(n=8, machines=1, calibration_length=T, seed=seed)
        lp = solve_tise_lp(gen.instance.jobs, T, 3)
        result = augmented_round(
            gen.instance.jobs, lp.calibrations, lp.assignments, T
        )
        capped = result.assignment.capped()
        for job in gen.instance.jobs:
            assert capped.coverage(job.job_id) == pytest.approx(1.0, abs=1e-6)
        processing = {j.job_id: j.processing for j in gen.instance.jobs}
        for k in range(len(capped.calibration_starts)):
            assert capped.calibration_load(k, processing) <= T + 1e-6


class TestEdgeCases:
    def test_empty_inputs(self):
        result = augmented_round((), {}, {}, 10.0)
        assert result.assignment.calibration_starts == ()
        assert result.discarded == {}

    def test_invariant_check_can_be_disabled(self):
        jobs, calibrations, assignments = figure3_inputs()
        result = augmented_round(
            jobs, calibrations, assignments, 10.0, check_invariants=False
        )
        assert result.max_y_minus_carryover <= 1e-6  # still recorded

    def test_custom_threshold_scales_writeback(self):
        """At threshold tau the write-back factor is 1/tau; coverage still
        holds on a real LP solution."""
        T = 10.0
        gen = long_window_instance(n=6, machines=1, calibration_length=T, seed=9)
        lp = solve_tise_lp(gen.instance.jobs, T, 3)
        result = augmented_round(
            gen.instance.jobs, lp.calibrations, lp.assignments, T, threshold=0.25
        )
        for job in gen.instance.jobs:
            assert result.assignment.coverage(job.job_id) >= 1.0 - 1e-6
