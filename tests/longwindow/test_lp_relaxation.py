"""Tests for the TISE LP relaxation: structure, known optima, infeasibility."""

from __future__ import annotations

import pytest

from repro.core import InfeasibleInstanceError, Job
from repro.instances import long_window_instance
from repro.longwindow import build_tise_lp, ise_to_tise, solve_tise_lp


def _long_job(job_id: int, release: float, T: float, p: float, window: float = None):
    window = window if window is not None else 3 * T
    return Job(job_id=job_id, release=release, deadline=release + window, processing=p)


class TestLPStructure:
    def test_variable_counts(self):
        T = 10.0
        jobs = (_long_job(0, 0.0, T, 2.0),)
        model = build_tise_lp(jobs, T, machine_budget=3)
        # C per point; X only at TISE-feasible points.
        assert model.num_points == len(model.c_vars)
        for (_, t) in model.x_vars:
            assert jobs[0].release - 1e-9 <= t <= jobs[0].deadline - T + 1e-9

    def test_x_vars_respect_constraint_5(self):
        T = 10.0
        jobs = (
            _long_job(0, 0.0, T, 2.0, window=2 * T),
            _long_job(1, 50.0, T, 2.0, window=2 * T),
        )
        model = build_tise_lp(jobs, T, machine_budget=3)
        for (job_id, t) in model.x_vars:
            job = jobs[job_id]
            assert job.release - 1e-9 <= t <= job.deadline - T + 1e-9


class TestKnownOptima:
    def test_single_job_needs_one_calibration(self):
        T = 10.0
        jobs = (_long_job(0, 0.0, T, 4.0),)
        sol = solve_tise_lp(jobs, T, machine_budget=3)
        assert sol.objective == pytest.approx(1.0, abs=1e-6)
        assert sol.job_coverage(0) == pytest.approx(1.0, abs=1e-6)

    def test_two_small_jobs_share_one_calibration(self):
        T = 10.0
        jobs = (
            _long_job(0, 0.0, T, 3.0),
            _long_job(1, 0.0, T, 3.0),
        )
        sol = solve_tise_lp(jobs, T, machine_budget=3)
        assert sol.objective == pytest.approx(1.0, abs=1e-6)

    def test_work_bound_binds_for_heavy_jobs(self):
        """k identical jobs with p = T at one point: LP value = k (work)."""
        T = 10.0
        k = 4
        jobs = tuple(_long_job(i, 0.0, T, T, window=2 * T) for i in range(k))
        sol = solve_tise_lp(jobs, T, machine_budget=2 * k)
        assert sol.objective == pytest.approx(float(k), abs=1e-6)

    def test_fractional_optimum_below_integer(self):
        """Two jobs of p = 0.6T at one point: fractional value 1.2 < 2."""
        T = 10.0
        jobs = tuple(_long_job(i, 0.0, T, 6.0, window=2 * T) for i in range(2))
        sol = solve_tise_lp(jobs, T, machine_budget=4)
        assert sol.objective == pytest.approx(1.2, abs=1e-6)


class TestInfeasibility:
    def test_machine_budget_infeasible(self):
        """7 rigid p=T jobs in window 2T on m'=3: needs C_0 + C_T >= 7 but
        each point carries at most m' calibrations per T-window."""
        T = 10.0
        jobs = tuple(_long_job(i, 0.0, T, T, window=2 * T) for i in range(7))
        with pytest.raises(InfeasibleInstanceError):
            solve_tise_lp(jobs, T, machine_budget=3)

    def test_same_instance_feasible_with_budget(self):
        T = 10.0
        jobs = tuple(_long_job(i, 0.0, T, T, window=2 * T) for i in range(7))
        sol = solve_tise_lp(jobs, T, machine_budget=4)
        assert sol.objective == pytest.approx(7.0, abs=1e-6)

    def test_empty_jobs(self):
        sol = solve_tise_lp((), 10.0, machine_budget=3)
        assert sol.objective == 0.0
        assert sol.calibrations == {}


class TestAgainstWitness:
    @pytest.mark.parametrize("seed", range(4))
    def test_lp_below_witness_bound(self, seed):
        """LP(3m) <= 3 * witness calibrations (Lemma 2 + relaxation):
        the witness is an ISE schedule on m machines, so its Lemma 2
        transform is a TISE schedule on 3m with 3x calibrations, which is
        LP-feasible."""
        gen = long_window_instance(
            n=10, machines=2, calibration_length=10.0, seed=seed
        )
        sol = solve_tise_lp(
            gen.instance.jobs, 10.0, machine_budget=3 * gen.instance.machines
        )
        assert sol.objective <= 3 * gen.witness_calibrations + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_every_job_fully_assigned(self, seed):
        gen = long_window_instance(
            n=8, machines=1, calibration_length=10.0, seed=seed
        )
        sol = solve_tise_lp(gen.instance.jobs, 10.0, machine_budget=3)
        for job in gen.instance.jobs:
            assert sol.job_coverage(job.job_id) == pytest.approx(1.0, abs=1e-6)

    def test_simplex_backend_agrees(self):
        gen = long_window_instance(
            n=5, machines=1, calibration_length=10.0, seed=0
        )
        h = solve_tise_lp(gen.instance.jobs, 10.0, 3, backend="highs")
        s = solve_tise_lp(gen.instance.jobs, 10.0, 3, backend="simplex")
        assert s.objective == pytest.approx(h.objective, abs=1e-6)
