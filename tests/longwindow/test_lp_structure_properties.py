"""Structural properties of the TISE LP, anchored by witness schedules.

The key soundness chain tested here: a feasible ISE witness on ``m``
machines, pushed through Lemma 2, yields a TISE schedule on ``3m`` machines;
translating that schedule into LP variables must give a *feasible LP point*
whose objective equals its calibration count.  This certifies that the LP
really relaxes the TISE problem (no missing/over-tight constraint), which
every downstream guarantee relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Schedule
from repro.instances import long_window_instance
from repro.longwindow import build_tise_lp, ise_to_tise, solve_tise_lp


def _schedule_to_lp_point(model, instance, schedule: Schedule) -> np.ndarray:
    """Encode a TISE schedule as an LP assignment vector.

    ``C_t`` = number of calibrations starting at point ``t`` (grouped across
    machines, as the LP does); ``X_{jt}`` = 1 at the job's calibration point.
    """
    x = np.zeros(model.lp.num_variables)
    job_map = instance.job_map()
    # Snap calibration starts onto model points.
    points = np.asarray(model.points)

    def snap(t: float) -> float:
        idx = int(np.argmin(np.abs(points - t)))
        assert abs(points[idx] - t) < 1e-6, f"start {t} not a potential point"
        return float(points[idx])

    for cal in schedule.calibrations:
        x[model.c_vars[snap(cal.start)]] += 1.0
    for placement in schedule.placements:
        job = job_map[placement.job_id]
        cal = schedule.enclosing_calibration(placement, job.processing)
        assert cal is not None
        x[model.x_vars[(job.job_id, snap(cal.start))]] = 1.0
    return x


@pytest.mark.parametrize("seed", range(6))
def test_lemma2_witness_is_lp_feasible(seed):
    """The Lemma 2 transform of any witness is a feasible LP point."""
    T = 10.0
    gen = long_window_instance(10, 2, T, seed)
    tise, _ = ise_to_tise(gen.instance, gen.witness)
    # Lemma 3 normalization first: LP variables only exist at potential
    # points, and witness calibrations may start anywhere.
    from repro.longwindow import canonicalize

    canonical = canonicalize(gen.instance, tise).schedule
    pruned = canonical.prune_empty_calibrations(
        {j.job_id: j.processing for j in gen.instance.jobs}
    )
    model = build_tise_lp(
        gen.instance.jobs, T, machine_budget=3 * gen.instance.machines
    )
    point = _schedule_to_lp_point(model, gen.instance, pruned)
    violation = model.lp.constraint_violation(point)
    assert violation < 1e-6, f"LP constraint violated by {violation}"
    assert model.lp.objective_value(point) == pytest.approx(
        pruned.num_calibrations
    )


@pytest.mark.parametrize("seed", range(4))
def test_lp_optimum_at_most_any_feasible_point(seed):
    """Relaxation soundness: LP optimum <= the witness-derived objective."""
    T = 10.0
    gen = long_window_instance(8, 1, T, seed)
    from repro.longwindow import canonicalize

    tise, _ = ise_to_tise(gen.instance, gen.witness)
    pruned = canonicalize(gen.instance, tise).schedule.prune_empty_calibrations(
        {j.job_id: j.processing for j in gen.instance.jobs}
    )
    lp = solve_tise_lp(gen.instance.jobs, T, 3 * gen.instance.machines)
    assert lp.objective <= pruned.num_calibrations + 1e-6


@pytest.mark.parametrize("seed", range(3))
def test_lp_solution_satisfies_model(seed):
    """The solver's own output re-checks against the raw model arrays."""
    T = 10.0
    gen = long_window_instance(8, 2, T, seed)
    model = build_tise_lp(gen.instance.jobs, T, 6)
    from repro.lp import solve_highs

    solution = solve_highs(model.lp)
    assert solution.ok
    assert model.lp.constraint_violation(solution.x) < 1e-6
    assert model.lp.objective_value(solution.x) == pytest.approx(
        solution.objective, abs=1e-6
    )
