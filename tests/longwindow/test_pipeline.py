"""End-to-end tests of the long-window pipeline (Theorem 12)."""

from __future__ import annotations

import pytest

from repro.core import (
    InfeasibleInstanceError,
    Instance,
    InvalidInstanceError,
    Job,
    validate_tise,
)
from repro.instances import long_window_instance
from repro.longwindow import LongWindowConfig, LongWindowSolver


class TestTheorem12Bounds:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("machines", [1, 2])
    def test_bounds_hold(self, seed, machines):
        T = 10.0
        gen = long_window_instance(
            n=12, machines=machines, calibration_length=T, seed=seed
        )
        result = LongWindowSolver().solve(gen.instance)
        # Feasibility (independent validator, TISE restriction included).
        report = validate_tise(gen.instance, result.schedule)
        assert report.ok, report.summary()
        # Machines: at most 18 m (Theorem 12).
        assert result.machines_used <= 18 * machines
        assert result.machine_budget == 18 * machines
        # Calibrations: unpruned count <= 4 * LP value (Lemmas 7 + 9), and
        # hence <= 12 * (LP/3) = 12 * lower bound (Theorem 12).
        assert result.unpruned_calibrations <= 4 * result.lp_value + 1e-6
        assert result.num_calibrations <= result.unpruned_calibrations
        assert result.approximation_ratio <= 12.0 + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_beats_witness_at_most_modestly(self, seed):
        """Sanity on solution quality: the pipeline should stay within the
        worst-case factor of the witness upper bound too."""
        gen = long_window_instance(
            n=12, machines=2, calibration_length=10.0, seed=seed
        )
        result = LongWindowSolver().solve(gen.instance)
        assert result.num_calibrations <= 12 * gen.witness_calibrations


class TestConfig:
    def test_simplex_backend(self):
        gen = long_window_instance(n=5, machines=1, calibration_length=10.0, seed=2)
        cfg = LongWindowConfig(lp_backend="simplex")
        result = LongWindowSolver(cfg).solve(gen.instance)
        assert validate_tise(gen.instance, result.schedule).ok

    def test_no_pruning_keeps_mirror_count(self):
        gen = long_window_instance(n=6, machines=1, calibration_length=10.0, seed=0)
        result = LongWindowSolver(
            LongWindowConfig(prune_empty=False)
        ).solve(gen.instance)
        assert result.num_calibrations == result.unpruned_calibrations
        assert result.num_calibrations == 2 * result.rounded_calibrations

    def test_wall_times_recorded(self):
        gen = long_window_instance(n=5, machines=1, calibration_length=10.0, seed=1)
        result = LongWindowSolver().solve(gen.instance)
        assert {"points", "lp", "rounding", "edf", "validate"} <= set(
            result.wall_times
        )


class TestErrors:
    def test_rejects_short_jobs(self, t10):
        jobs = (Job(0, 0.0, 15.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        with pytest.raises(InvalidInstanceError):
            LongWindowSolver().solve(inst)

    def test_detects_infeasible_instance(self, t10):
        """7 rigid full-T jobs in a 2T window cannot fit on one machine even
        after the 3x augmentation: the LP certifies it."""
        jobs = tuple(Job(i, 0.0, 2 * t10, t10) for i in range(7))
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        with pytest.raises(InfeasibleInstanceError):
            LongWindowSolver().solve(inst)

    def test_empty_instance(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        result = LongWindowSolver().solve(inst)
        assert result.num_calibrations == 0
        assert result.lp_value == 0.0


class TestLowerBoundAccounting:
    def test_lower_bound_is_lp_over_three(self):
        gen = long_window_instance(n=8, machines=1, calibration_length=10.0, seed=4)
        result = LongWindowSolver().solve(gen.instance)
        assert result.lower_bound == pytest.approx(result.lp_value / 3.0)
        # The witness proves OPT <= witness count; the bound must respect it.
        assert result.lower_bound <= gen.witness_calibrations + 1e-6
