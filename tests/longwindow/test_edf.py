"""Tests for Algorithm 2 (EDF assignment) and the Lemma 8/9 constructions."""

from __future__ import annotations

import pytest

from repro.core import (
    Calibration,
    CalibrationSchedule,
    InfeasibleScheduleError,
    Job,
    validate_tise,
)
from repro.instances import long_window_instance
from repro.longwindow import (
    assign_jobs_edf,
    fractional_edf,
    fractional_to_integer,
    mirror_calibrations,
    round_calibrations,
    solve_tise_lp,
)


def _pipeline_calendar(gen, T=10.0):
    m_prime = 3 * gen.instance.machines
    lp = solve_tise_lp(gen.instance.jobs, T, m_prime)
    return round_calibrations(lp.calibrations, m_prime, T).schedule


class TestMirror:
    def test_doubles_everything(self):
        cals = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0), Calibration(20.0, 1)),
            num_machines=2,
            calibration_length=10.0,
        )
        mirrored = mirror_calibrations(cals)
        assert mirrored.num_machines == 4
        assert mirrored.num_calibrations == 4
        assert {c.machine for c in mirrored} == {0, 1, 2, 3}
        # Mirrored copies share start times.
        starts = sorted(c.start for c in mirrored)
        assert starts == [0.0, 0.0, 20.0, 20.0]


class TestAlgorithm2:
    @pytest.mark.parametrize("seed", range(5))
    def test_schedules_all_jobs_tise_validly(self, seed):
        T = 10.0
        gen = long_window_instance(n=12, machines=2, calibration_length=T, seed=seed)
        calendar = _pipeline_calendar(gen, T)
        schedule = assign_jobs_edf(gen.instance.jobs, calendar)
        report = validate_tise(gen.instance, schedule)
        assert report.ok, report.summary()
        assert schedule.scheduled_job_ids() == {
            j.job_id for j in gen.instance.jobs
        }

    def test_machine_count_doubles(self):
        T = 10.0
        gen = long_window_instance(n=8, machines=1, calibration_length=T, seed=1)
        calendar = _pipeline_calendar(gen, T)
        schedule = assign_jobs_edf(gen.instance.jobs, calendar)
        assert schedule.num_machines == 2 * calendar.num_machines
        assert schedule.num_calibrations == 2 * calendar.num_calibrations

    def test_raises_on_inadequate_calendar(self):
        T = 10.0
        jobs = (Job(0, 0.0, 25.0, 5.0),)
        empty = CalibrationSchedule((), 1, T)
        with pytest.raises(InfeasibleScheduleError):
            assign_jobs_edf(jobs, empty)

    def test_edf_order_within_calibration(self):
        """Jobs packed into one calibration appear in deadline order."""
        T = 10.0
        jobs = (
            Job(0, 0.0, 40.0, 3.0),
            Job(1, 0.0, 30.0, 3.0),
            Job(2, 0.0, 25.0, 3.0),
        )
        calendar = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0),), num_machines=1,
            calibration_length=T,
        )
        schedule = assign_jobs_edf(jobs, calendar, mirror=False)
        starts = {p.job_id: p.start for p in schedule.placements}
        # Earliest deadline (job 2) first.
        assert starts[2] < starts[1] < starts[0]

    def test_stops_at_first_nonfitting_edf_job(self):
        """Faithful pseudocode detail: if the earliest-deadline job does not
        fit, the calibration is closed even though a smaller job would fit."""
        T = 10.0
        jobs = (
            Job(0, 0.0, 25.0, 8.0),   # earliest deadline, large
            Job(1, 0.0, 40.0, 1.0),   # would fit, but EDF stops first
        )
        calendar = CalibrationSchedule(
            calibrations=(
                Calibration(0.0, 0),
                Calibration(12.0, 0),
            ),
            num_machines=1,
            calibration_length=T,
        )
        schedule = assign_jobs_edf(jobs, calendar, mirror=False)
        p0 = schedule.placement_of(0)
        p1 = schedule.placement_of(1)
        assert p0.start == pytest.approx(0.0)
        # Job 1 is NOT packed behind job 0 (8 + 1 <= 10 would fit!) only if
        # EDF had stopped; here job 0 fits so job 1 does get packed after it.
        assert p1.start == pytest.approx(8.0)

        # Now make job 0 not fit first: shrink the calendar so cal 0 is the
        # only option for job 1 but job 0's deadline forces it to cal 0 too.
        jobs2 = (
            Job(0, 0.0, 25.0, 9.5),
            Job(1, 0.0, 40.0, 1.0),
        )
        calendar2 = CalibrationSchedule(
            calibrations=(Calibration(0.0, 0), Calibration(12.0, 0)),
            num_machines=1,
            calibration_length=T,
        )
        schedule2 = assign_jobs_edf(jobs2, calendar2, mirror=False)
        # Cal 0 takes job 0 (9.5); job 1 no longer fits (10.5 > 10) and goes
        # to the next calibration even though it is tiny.
        assert schedule2.placement_of(1).start == pytest.approx(12.0)


class TestFractionalEDF:
    @pytest.mark.parametrize("seed", range(4))
    def test_complete_on_pipeline_calendars(self, seed):
        """Lemma 8: whenever a fractional assignment is feasible (Cor. 6
        guarantees it on rounded LP calendars after mirroring), fractional
        EDF completes every job."""
        T = 10.0
        gen = long_window_instance(n=10, machines=2, calibration_length=T, seed=seed)
        calendar = mirror_calibrations(_pipeline_calendar(gen, T))
        result = fractional_edf(gen.instance.jobs, calendar)
        assert result.complete, result.unassigned

    def test_fractions_sum_to_one(self):
        T = 10.0
        gen = long_window_instance(n=8, machines=1, calibration_length=T, seed=3)
        calendar = mirror_calibrations(_pipeline_calendar(gen, T))
        result = fractional_edf(gen.instance.jobs, calendar)
        totals: dict[int, float] = {}
        for (jid, _), frac in result.fractions.items():
            totals[jid] = totals.get(jid, 0.0) + frac
        for job in gen.instance.jobs:
            assert totals[job.job_id] == pytest.approx(1.0, abs=1e-9)

    def test_incomplete_on_empty_calendar(self):
        jobs = (Job(0, 0.0, 25.0, 5.0),)
        result = fractional_edf(jobs, CalibrationSchedule((), 1, 10.0))
        assert not result.complete
        assert result.unassigned == {0: 1.0}


class TestLemma9:
    @pytest.mark.parametrize("seed", range(4))
    def test_integer_transform_valid(self, seed):
        T = 10.0
        gen = long_window_instance(n=10, machines=2, calibration_length=T, seed=seed)
        calendar = mirror_calibrations(_pipeline_calendar(gen, T))
        fractional = fractional_edf(gen.instance.jobs, calendar)
        schedule = fractional_to_integer(gen.instance.jobs, calendar, fractional)
        report = validate_tise(gen.instance, schedule)
        assert report.ok, report.summary()
        assert schedule.num_machines == 2 * calendar.num_machines

    def test_rejects_incomplete_fractional(self):
        jobs = (Job(0, 0.0, 25.0, 5.0),)
        calendar = CalibrationSchedule((), 1, 10.0)
        fractional = fractional_edf(jobs, calendar)
        with pytest.raises(InfeasibleScheduleError):
            fractional_to_integer(jobs, calendar, fractional)


class TestLemma10:
    @pytest.mark.parametrize("seed", range(3))
    def test_algorithm2_not_worse_than_lemma9(self, seed):
        """Both complete all jobs; Algorithm 2 uses no more calibrations than
        the Lemma 9 transformation's calendar (they share the doubled
        calendar, so compare the number of *used* calibrations)."""
        T = 10.0
        gen = long_window_instance(n=10, machines=2, calibration_length=T, seed=seed)
        calendar = _pipeline_calendar(gen, T)
        processing = {j.job_id: j.processing for j in gen.instance.jobs}

        alg2 = assign_jobs_edf(gen.instance.jobs, calendar).prune_empty_calibrations(processing)
        mirrored = mirror_calibrations(calendar)
        fractional = fractional_edf(gen.instance.jobs, mirrored)
        lemma9 = fractional_to_integer(
            gen.instance.jobs, mirrored, fractional
        ).prune_empty_calibrations(processing)
        assert alg2.scheduled_job_ids() == lemma9.scheduled_job_ids()
