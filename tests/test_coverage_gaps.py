"""Targeted tests for corners not covered by the module-specific suites."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job
from repro.core.schedule import empty_schedule


class TestMetricsCorners:
    def test_empty_schedule_metrics(self, t10):
        from repro.analysis import summarize_schedule

        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        metrics = summarize_schedule(inst, empty_schedule(t10))
        assert metrics.num_calibrations == 0
        assert metrics.utilization == 0.0
        assert metrics.horizon == (0.0, 0.0)

    def test_speed_schedule_metrics(self, t10):
        from repro.analysis import summarize_schedule
        from repro.core import Calibration, CalibrationSchedule, Schedule, ScheduledJob

        jobs = (Job(0, 0.0, 30.0, 8.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0),),
            speed=2.0,
        )
        metrics = summarize_schedule(inst, sched)
        assert metrics.busy_time == pytest.approx(4.0)  # 8 / speed 2
        assert metrics.utilization == pytest.approx(0.4)


class TestLPSolutionAccessors:
    def test_total_mass_and_coverage(self):
        from repro.instances import long_window_instance
        from repro.longwindow import solve_tise_lp

        gen = long_window_instance(6, 1, 10.0, 0)
        lp = solve_tise_lp(gen.instance.jobs, 10.0, 3)
        assert lp.total_calibration_mass() == pytest.approx(lp.objective, abs=1e-6)
        for job in gen.instance.jobs:
            assert lp.job_coverage(job.job_id) == pytest.approx(1.0, abs=1e-6)

    def test_value_raises_without_solution(self):
        from repro.core import SolverError
        from repro.lp import LPSolution, LPStatus

        sol = LPSolution(status=LPStatus.INFEASIBLE, objective=None, x=None)
        with pytest.raises(SolverError):
            sol.value(0)


class TestCandidateStarts:
    def test_always_includes_extremes(self):
        from repro.mm.lp_rounding import candidate_starts

        jobs = (Job(0, 2.0, 12.0, 3.0), Job(1, 0.0, 20.0, 4.0))
        starts = candidate_starts(jobs, speed=1.0)
        assert 2.0 in starts[0] and 12.0 - 3.0 in starts[0]
        assert 0.0 in starts[1] and 16.0 in starts[1]
        for jid, job in ((0, jobs[0]), (1, jobs[1])):
            for s in starts[jid]:
                assert job.release - 1e-9 <= s <= job.latest_start + 1e-9

    def test_speed_scales_latest_start(self):
        from repro.mm.lp_rounding import candidate_starts

        jobs = (Job(0, 0.0, 10.0, 8.0),)
        slow = candidate_starts(jobs, speed=1.0)[0]
        fast = candidate_starts(jobs, speed=2.0)[0]
        assert max(slow) == pytest.approx(2.0)
        assert max(fast) == pytest.approx(6.0)


class TestCliRenderWithoutSchedule:
    def test_render_instance_only(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "i.json"
        main([
            "generate", "--family", "mixed", "--n", "6", "--machines", "1",
            "--T", "10", "--seed", "0", "--out", str(path),
        ])
        capsys.readouterr()
        assert main(["render", str(path)]) == 0
        out = capsys.readouterr().out
        assert "job" in out
        assert "m0" not in out  # no machine lanes without a schedule


class TestSimulatorCorners:
    def test_unknown_job_event(self, t10):
        from repro.core import Calibration, CalibrationSchedule, Schedule, ScheduledJob
        from repro.sim import simulate

        jobs = (Job(0, 0.0, 25.0, 2.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(
                ScheduledJob(0.0, 0, 0),
                ScheduledJob(3.0, 0, 99),  # ghost job
            ),
        )
        result = simulate(inst, sched)
        assert any("unknown job" in v for v in result.violations)

    def test_empty_simulation(self, t10):
        from repro.sim import simulate

        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        result = simulate(inst, empty_schedule(t10))
        assert result.ok
        assert result.makespan == 0.0
        assert result.utilization == 0.0
