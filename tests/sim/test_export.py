"""Tests for simulation CSV export."""

from __future__ import annotations

import csv
import io

import pytest

from repro import solve_ise
from repro.instances import mixed_instance
from repro.sim import (
    events_to_csv,
    machine_stats_to_csv,
    save_simulation_csv,
    simulate,
)


@pytest.fixture
def run():
    gen = mixed_instance(8, 2, 10.0, seed=2)
    result = solve_ise(gen.instance)
    return gen.instance, simulate(gen.instance, result.schedule)


class TestEventsCsv:
    def test_row_count_and_header(self, run):
        instance, result = run
        text = events_to_csv(result)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["time", "kind", "machine", "job_id"]
        assert len(rows) - 1 == len(result.events)

    def test_times_nondecreasing(self, run):
        _, result = run
        rows = list(csv.DictReader(io.StringIO(events_to_csv(result))))
        times = [float(r["time"]) for r in rows]
        assert times == sorted(times)

    def test_kinds_valid(self, run):
        _, result = run
        rows = list(csv.DictReader(io.StringIO(events_to_csv(result))))
        assert {r["kind"] for r in rows} <= {"calibrate", "job_start", "job_end"}

    def test_every_job_starts_and_ends(self, run):
        instance, result = run
        rows = list(csv.DictReader(io.StringIO(events_to_csv(result))))
        starts = {r["job_id"] for r in rows if r["kind"] == "job_start"}
        ends = {r["job_id"] for r in rows if r["kind"] == "job_end"}
        expected = {str(j.job_id) for j in instance.jobs}
        assert starts == expected and ends == expected


class TestMachineCsv:
    def test_parses_and_sums(self, run):
        _, result = run
        rows = list(csv.DictReader(io.StringIO(machine_stats_to_csv(result))))
        busy_total = sum(float(r["busy_time"]) for r in rows)
        assert busy_total == pytest.approx(result.total_busy_time, rel=1e-6)
        for r in rows:
            assert 0.0 <= float(r["utilization"]) <= 1.0 + 1e-9


class TestSave:
    def test_writes_both_files(self, run, tmp_path):
        _, result = run
        events_path, machines_path = save_simulation_csv(result, tmp_path, "x")
        assert events_path.name == "x_events.csv"
        assert machines_path.name == "x_machines.csv"
        assert events_path.read_text().startswith("time,kind")
        assert machines_path.read_text().startswith("machine,busy_time")
