"""Tests for the discrete-event simulator, including validator agreement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import solve_ise
from repro.core import (
    Calibration,
    CalibrationSchedule,
    Instance,
    Job,
    Schedule,
    ScheduledJob,
    validate_ise,
)
from repro.instances import mixed_instance, long_window_instance
from repro.longwindow import LongWindowSolver
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver
from repro.instances import short_window_instance
from repro.sim import simulate


def _simple_case(t10):
    jobs = (
        Job(0, 0.0, 25.0, 3.0),
        Job(1, 2.0, 30.0, 4.0),
    )
    inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
    sched = Schedule(
        calibrations=CalibrationSchedule((Calibration(2.0, 0),), 1, t10),
        placements=(ScheduledJob(2.0, 0, 0), ScheduledJob(5.0, 0, 1)),
    )
    return inst, sched


class TestHappyPath:
    def test_feasible_schedule_simulates_clean(self, t10):
        inst, sched = _simple_case(t10)
        result = simulate(inst, sched)
        assert result.ok, result.violations
        assert result.completed_jobs == {0, 1}
        # Last event is job 1's completion at t = 9.
        assert result.makespan == pytest.approx(9.0)
        assert result.total_busy_time == pytest.approx(7.0)
        assert result.total_calibrated_time == pytest.approx(10.0)
        assert result.utilization == pytest.approx(0.7)

    def test_speed_scaled_busy_time(self, t10):
        jobs = (Job(0, 0.0, 25.0, 8.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0),),
            speed=2.0,
        )
        result = simulate(inst, sched)
        assert result.ok
        assert result.total_busy_time == pytest.approx(4.0)


class TestRuntimeViolations:
    def test_start_before_release(self, t10):
        jobs = (Job(0, 5.0, 25.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        result = simulate(inst, sched)
        assert not result.ok
        assert any("before its release" in v for v in result.violations)

    def test_run_past_calibration(self, t10):
        jobs = (Job(0, 0.0, 25.0, 5.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(8.0, 0, 0),),
        )
        result = simulate(inst, sched)
        assert any("calibrated horizon" in v for v in result.violations)

    def test_deadline_miss(self, t10):
        jobs = (Job(0, 0.0, 10.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(8.0, 0),), 1, t10),
            placements=(ScheduledJob(8.0, 0, 0),),
        )
        result = simulate(inst, sched)
        assert any("after its deadline" in v for v in result.violations)

    def test_machine_busy_overlap(self, t10):
        jobs = (Job(0, 0.0, 25.0, 5.0), Job(1, 0.0, 25.0, 5.0))
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(0.0, 0, 0), ScheduledJob(2.0, 0, 1)),
        )
        result = simulate(inst, sched)
        assert any("still running" in v for v in result.violations)

    def test_overlapping_recalibration_flagged_then_allowed(self, t10):
        jobs = (Job(0, 0.0, 25.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0), Calibration(5.0, 0)), 1, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        strict = simulate(inst, sched)
        assert any("recalibrated" in v for v in strict.violations)
        relaxed = simulate(inst, sched, allow_overlap=True)
        assert relaxed.ok
        # Overlap-aware accounting: calibrated [0, 15) = 15, not 20.
        assert relaxed.total_calibrated_time == pytest.approx(15.0)

    def test_missing_job_reported(self, t10):
        inst, sched = _simple_case(t10)
        partial = Schedule(
            calibrations=sched.calibrations, placements=sched.placements[:1]
        )
        result = simulate(inst, partial)
        assert any("never completed" in v for v in result.violations)


class TestAgreementWithValidator:
    """The simulator and the static validator are independent
    implementations of the same feasibility notion: they must agree."""

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_on_solver_outputs(self, seed):
        gen = mixed_instance(15, 2, 10.0, seed)
        result = solve_ise(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok
        assert simulate(gen.instance, result.schedule).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_on_witnesses(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        assert validate_ise(gen.instance, gen.witness).ok
        assert simulate(gen.instance, gen.witness).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_on_speed_schedules(self, seed):
        gen = long_window_instance(10, 1, 10.0, seed)
        _, traded = LongWindowSolver().solve_with_speed(gen.instance)
        assert validate_ise(gen.instance, traded.schedule).ok
        assert simulate(gen.instance, traded.schedule).ok

    def test_agreement_on_overlapping_variant(self):
        gen = short_window_instance(15, 2, 10.0, 1)
        result = ShortWindowSolver(
            ShortWindowConfig(overlapping_calibrations=True)
        ).solve(gen.instance)
        assert validate_ise(
            gen.instance, result.schedule, allow_overlapping_calibrations=True
        ).ok
        assert simulate(gen.instance, result.schedule, allow_overlap=True).ok


@given(seed=st.integers(0, 5000), n=st.integers(3, 12))
@settings(max_examples=12, deadline=None)
def test_simulator_validator_agreement_property(seed, n):
    gen = mixed_instance(n, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    static_ok = validate_ise(gen.instance, result.schedule).ok
    dynamic = simulate(gen.instance, result.schedule)
    assert static_ok == dynamic.ok
    assert dynamic.completed_jobs == {j.job_id for j in gen.instance.jobs}
