"""Tests for the timeline reconstruction and the audit_run convenience."""

from __future__ import annotations

import pytest

from repro import solve_ise
from repro.core import (
    Calibration,
    CalibrationSchedule,
    Instance,
    Job,
    Schedule,
    ScheduledJob,
)
from repro.instances import mixed_instance
from repro.sim import all_timelines, machine_timeline, simulate
from repro.theory import audit_run


class TestMachineTimeline:
    def test_basic_segments(self, t10):
        jobs = (Job(0, 0.0, 25.0, 3.0), Job(1, 0.0, 25.0, 4.0))
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule((Calibration(0.0, 0),), 1, t10),
            placements=(ScheduledJob(1.0, 0, 0), ScheduledJob(4.0, 0, 1)),
        )
        segments = machine_timeline(inst, sched, 0)
        states = [(s.state, s.job_id) for s in segments]
        assert states == [
            ("calibrated-idle", None),
            ("busy", 0),
            ("busy", 1),
            ("calibrated-idle", None),
        ]
        assert segments[0].duration == pytest.approx(1.0)
        assert segments[-1].duration == pytest.approx(2.0)
        # Total accounted time equals the calibrated horizon.
        assert sum(s.duration for s in segments) == pytest.approx(t10)

    def test_overlapping_calibrations_merged(self, t10):
        jobs = (Job(0, 0.0, 25.0, 3.0),)
        inst = Instance(jobs=jobs, machines=1, calibration_length=t10)
        sched = Schedule(
            calibrations=CalibrationSchedule(
                (Calibration(0.0, 0), Calibration(5.0, 0)), 1, t10
            ),
            placements=(ScheduledJob(0.0, 0, 0),),
        )
        segments = machine_timeline(inst, sched, 0)
        # Merged span [0, 15): busy [0,3) + idle [3,15).
        assert sum(s.duration for s in segments) == pytest.approx(15.0)

    def test_conservation_against_simulator(self):
        """Timeline busy/idle totals reconcile with simulator statistics."""
        gen = mixed_instance(14, 2, 10.0, 3)
        result = solve_ise(gen.instance)
        timelines = all_timelines(gen.instance, result.schedule)
        run = simulate(gen.instance, result.schedule)
        busy_total = sum(
            s.duration
            for segments in timelines.values()
            for s in segments
            if s.state == "busy"
        )
        assert busy_total == pytest.approx(run.total_busy_time, rel=1e-6)
        accounted = sum(
            s.duration for segs in timelines.values() for s in segs
        )
        assert accounted == pytest.approx(run.total_calibrated_time, rel=1e-6)

    def test_machine_without_calibrations(self, t10):
        inst = Instance(jobs=(), machines=1, calibration_length=t10)
        from repro.core.schedule import empty_schedule

        assert machine_timeline(inst, empty_schedule(t10, 1), 0) == []


class TestAuditRun:
    def test_clean_run_passes(self):
        gen = mixed_instance(12, 2, 10.0, 1)
        result = solve_ise(gen.instance)
        report = audit_run(gen.instance, result)
        assert report.ok, report.summary()
        assert report.summary().startswith("[PASS]")

    def test_overlapping_variant_flag(self):
        from repro import ISEConfig

        gen = mixed_instance(14, 2, 10.0, 2, long_fraction=0.2)
        result = solve_ise(
            gen.instance, ISEConfig(overlapping_calibrations=True)
        )
        assert audit_run(
            gen.instance, result, allow_overlapping_calibrations=True
        ).ok

    def test_corrupted_run_fails(self):
        import dataclasses

        gen = mixed_instance(10, 2, 10.0, 0)
        result = solve_ise(gen.instance)
        broken_schedule = Schedule(
            calibrations=result.schedule.calibrations,
            placements=result.schedule.placements[:-1],
            speed=result.schedule.speed,
        )
        broken = dataclasses.replace(result, schedule=broken_schedule)
        report = audit_run(gen.instance, broken)
        assert not report.ok
        assert "FAIL" in report.summary()
