"""Cross-module property-based tests: the library's central invariants.

The single most important property: **every solver's output passes the
independent validator on every feasible instance**.  Feasibility is supplied
by the witness-based generators (seeded through hypothesis) so the paper's
preconditions hold by construction.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import solve_ise
from repro.core import validate_ise, validate_tise
from repro.baselines import always_calibrated, lazy_binning, one_calibration_per_job
from repro.instances import (
    clustered_instance,
    long_window_instance,
    mixed_instance,
    partition_instance,
    short_window_instance,
    unit_instance,
)
from repro.longwindow import LongWindowSolver, ise_to_tise, machines_to_speed
from repro.shortwindow import ShortWindowSolver

seeds = st.integers(0, 10_000)
sizes = st.integers(3, 14)
machine_counts = st.integers(1, 3)


@given(seed=seeds, n=sizes, m=machine_counts)
@settings(max_examples=15, deadline=None)
def test_combined_solver_always_feasible(seed, n, m):
    gen = mixed_instance(n, m, 10.0, seed)
    result = solve_ise(gen.instance)
    report = validate_ise(gen.instance, result.schedule)
    assert report.ok, report.summary()
    assert result.num_calibrations >= result.lower_bound.best - 1e-6


@given(seed=seeds, n=sizes, m=machine_counts)
@settings(max_examples=12, deadline=None)
def test_long_pipeline_always_tise_feasible(seed, n, m):
    gen = long_window_instance(n, m, 10.0, seed)
    result = LongWindowSolver().solve(gen.instance)
    report = validate_tise(gen.instance, result.schedule)
    assert report.ok, report.summary()
    assert result.machines_used <= 18 * m
    assert result.unpruned_calibrations <= 4 * result.lp_value + 1e-6


@given(seed=seeds, n=sizes, m=machine_counts)
@settings(max_examples=12, deadline=None)
def test_short_pipeline_always_feasible(seed, n, m):
    gen = short_window_instance(n, m, 10.0, seed)
    result = ShortWindowSolver().solve(gen.instance)
    report = validate_ise(gen.instance, result.schedule)
    assert report.ok, report.summary()


@given(seed=seeds, n=st.integers(3, 10), m=machine_counts)
@settings(max_examples=10, deadline=None)
def test_lemma2_exact_factors(seed, n, m):
    gen = long_window_instance(n, m, 10.0, seed)
    tise, traces = ise_to_tise(gen.instance, gen.witness)
    assert validate_tise(gen.instance, tise).ok
    assert tise.num_machines == 3 * m
    assert tise.num_calibrations == 3 * gen.witness_calibrations
    assert {t.action for t in traces} <= {"keep", "delay", "advance"}


@given(seed=seeds, n=st.integers(3, 10), c=st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_speed_tradeoff_always_feasible(seed, n, c):
    gen = long_window_instance(n, 1, 10.0, seed)
    result = LongWindowSolver().solve(gen.instance)
    traded = machines_to_speed(gen.instance, result.schedule, c)
    assert validate_ise(gen.instance, traded.schedule).ok
    assert traded.target_calibrations <= traded.source_calibrations
    assert traded.schedule.speed == pytest.approx(2.0 * c)


@given(seed=seeds, n=st.integers(2, 12))
@settings(max_examples=12, deadline=None)
def test_naive_baselines_always_feasible(seed, n):
    gen = clustered_instance(n, 2, 10.0, seed)
    per_job = one_calibration_per_job(gen.instance)
    assert validate_ise(gen.instance, per_job).ok
    assert per_job.num_calibrations == n
    calendar = always_calibrated(gen.instance)
    assert validate_ise(gen.instance, calendar).ok


@given(seed=seeds, n=st.integers(2, 10), m=st.integers(1, 3))
@settings(max_examples=12, deadline=None)
def test_lazy_binning_always_feasible(seed, n, m):
    gen = unit_instance(n, m, 3, seed)
    schedule = lazy_binning(gen.instance)
    report = validate_ise(gen.instance, schedule)
    assert report.ok, report.summary()


@given(seed=seeds, k=st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_partition_gadget_solvable(seed, k):
    gen = partition_instance(k, seed)
    result = solve_ise(gen.instance)
    assert validate_ise(gen.instance, result.schedule).ok


@given(seed=seeds, n=st.integers(3, 12))
@settings(max_examples=10, deadline=None)
def test_solution_never_beats_lower_bound(seed, n):
    """The certified lower bound must never exceed what a feasible schedule
    (the witness) achieves — and our solution must sit between them."""
    gen = mixed_instance(n, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    lb = result.lower_bound.best
    assert lb <= gen.witness_calibrations + 1e-6
    assert result.num_calibrations + 1e-9 >= lb


@given(seed=seeds, n=st.integers(3, 12))
@settings(max_examples=10, deadline=None)
def test_best_rounding_scheme_always_feasible_and_never_worse(seed, n):
    """The 'best' rounding scheme keeps feasibility and dominates greedy."""
    from repro.longwindow import LongWindowConfig

    gen = long_window_instance(n, 2, 10.0, seed)
    greedy = LongWindowSolver(
        LongWindowConfig(rounding_scheme="greedy")
    ).solve(gen.instance)
    best = LongWindowSolver(
        LongWindowConfig(rounding_scheme="best")
    ).solve(gen.instance)
    assert validate_tise(gen.instance, best.schedule).ok
    assert best.unpruned_calibrations <= greedy.unpruned_calibrations


@given(seed=seeds, n=st.integers(3, 14))
@settings(max_examples=10, deadline=None)
def test_rigid_family_solvable_and_tight(seed, n):
    """Rigid jobs leave only calibration placement free; the solver stays
    feasible and the exact-MM routing keeps machine counts minimal."""
    from repro.instances import rigid_instance
    from repro.mm import RigidExactMM

    gen = rigid_instance(n, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    assert validate_ise(gen.instance, result.schedule).ok
    exact_w = RigidExactMM().solve(gen.instance.jobs).num_machines
    assert exact_w <= gen.instance.machines  # witness-backed feasibility
