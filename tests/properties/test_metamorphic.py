"""Metamorphic properties: how solutions respond to instance transformations.

* **Scale invariance**: multiplying every time quantity (releases, deadlines,
  processing times, and T) by a positive factor is a unit change; every
  pipeline must return the same calibration count and an isomorphic schedule.
* **Translation invariance (long pipeline)**: the Section 3 machinery is
  anchored to job releases (Lemma 3 points are ``r_j + kT``), so shifting
  all windows by a constant must not change the solution size.  (The
  short-window pipeline is grid-anchored by Algorithm 4, so only the long
  pipeline has exact translation invariance.)
* **Determinism**: same input, same output, bit for bit.
* **Validator/simulator agreement under mutation**: corrupting a feasible
  schedule must be flagged by both independent checkers, or by neither when
  the mutation is harmless.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import solve_ise
from repro.core import Instance, Job, Schedule, ScheduledJob, validate_ise
from repro.instances import long_window_instance, mixed_instance
from repro.longwindow import LongWindowSolver
from repro.sim import simulate


def _scaled_instance(instance: Instance, factor: float) -> Instance:
    return Instance(
        jobs=tuple(
            Job(
                job_id=j.job_id,
                release=j.release * factor,
                deadline=j.deadline * factor,
                processing=j.processing * factor,
            )
            for j in instance.jobs
        ),
        machines=instance.machines,
        calibration_length=instance.calibration_length * factor,
    )


def _shifted_instance(instance: Instance, delta: float) -> Instance:
    return Instance(
        jobs=tuple(j.shifted(delta) for j in instance.jobs),
        machines=instance.machines,
        calibration_length=instance.calibration_length,
    )


def _unpruned_total(result) -> int:
    total = 0
    if result.long_result is not None:
        total += result.long_result.unpruned_calibrations
    if result.short_result is not None:
        total += result.short_result.unpruned_calibrations
    return total


@given(seed=st.integers(0, 3000), factor=st.sampled_from([0.5, 2.0, 7.0]))
@settings(max_examples=10, deadline=None)
def test_scale_invariance_combined(seed, factor):
    """Scaling all times is a unit change: the partition, the LP value, and
    the *unpruned* calibration counts are invariant.  (The pruned count may
    legitimately differ: the scaled LP can return a different same-objective
    vertex, changing which mirrored calibrations end up empty.)"""
    gen = mixed_instance(12, 2, 10.0, seed)
    base = solve_ise(gen.instance)
    scaled = solve_ise(_scaled_instance(gen.instance, factor))
    assert scaled.partition.n_long == base.partition.n_long
    assert _unpruned_total(scaled) == _unpruned_total(base)
    if base.long_result is not None:
        assert scaled.long_result is not None
        assert scaled.long_result.lp_value == pytest.approx(
            base.long_result.lp_value, rel=1e-6
        )
    # The pruned counts still agree up to the prunable slack.
    assert scaled.num_calibrations <= _unpruned_total(base)


@given(seed=st.integers(0, 3000), delta=st.sampled_from([-37.0, 13.25, 400.0]))
@settings(max_examples=10, deadline=None)
def test_translation_invariance_long_pipeline(seed, delta):
    gen = long_window_instance(10, 2, 10.0, seed)
    solver = LongWindowSolver()
    base = solver.solve(gen.instance)
    shifted = solver.solve(_shifted_instance(gen.instance, delta))
    assert shifted.num_calibrations == base.num_calibrations
    assert shifted.machines_used == base.machines_used
    assert shifted.lp_value == pytest.approx(base.lp_value, abs=1e-6)
    # The schedule itself is the base schedule translated.
    base_starts = sorted(c.start for c in base.schedule.calibrations)
    shifted_starts = sorted(c.start for c in shifted.schedule.calibrations)
    for a, b in zip(base_starts, shifted_starts):
        assert b == pytest.approx(a + delta, abs=1e-6)


@given(seed=st.integers(0, 3000))
@settings(max_examples=10, deadline=None)
def test_determinism(seed):
    gen = mixed_instance(12, 2, 10.0, seed)
    a = solve_ise(gen.instance)
    b = solve_ise(gen.instance)
    assert a.schedule.placements == b.schedule.placements
    assert a.schedule.calibrations.calibrations == b.schedule.calibrations.calibrations


@given(
    seed=st.integers(0, 3000),
    mutation=st.sampled_from(
        ["drop_calibration", "shift_job_late", "swap_machine", "translate_all"]
    ),
)
@settings(max_examples=20, deadline=None)
def test_checker_agreement_under_mutation(seed, mutation):
    """Both independent checkers reach the same verdict on mutated schedules."""
    gen = mixed_instance(10, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    schedule = result.schedule
    instance = gen.instance

    if mutation == "drop_calibration" and schedule.num_calibrations:
        kept = schedule.calibrations.calibrations[1:]
        schedule = Schedule(
            calibrations=schedule.calibrations.__class__(
                calibrations=kept,
                num_machines=schedule.calibrations.num_machines,
                calibration_length=schedule.calibration_length,
            ),
            placements=schedule.placements,
            speed=schedule.speed,
        )
    elif mutation == "shift_job_late" and schedule.placements:
        first, *rest = schedule.placements
        moved = ScheduledJob(
            start=first.start + 1000.0, machine=first.machine, job_id=first.job_id
        )
        schedule = Schedule(
            calibrations=schedule.calibrations,
            placements=tuple(rest) + (moved,),
            speed=schedule.speed,
        )
    elif mutation == "swap_machine" and schedule.placements:
        first, *rest = schedule.placements
        other = (first.machine + 1) % max(schedule.num_machines, 1)
        moved = ScheduledJob(start=first.start, machine=other, job_id=first.job_id)
        schedule = Schedule(
            calibrations=schedule.calibrations,
            placements=tuple(rest) + (moved,),
            speed=schedule.speed,
        )
    elif mutation == "translate_all":
        # Harmless: translate instance AND schedule together.
        delta = 57.5
        instance = _shifted_instance(instance, delta)
        schedule = Schedule(
            calibrations=schedule.calibrations.__class__(
                calibrations=tuple(
                    c.shifted(delta) for c in schedule.calibrations
                ),
                num_machines=schedule.calibrations.num_machines,
                calibration_length=schedule.calibration_length,
            ),
            placements=tuple(
                ScheduledJob(start=p.start + delta, machine=p.machine, job_id=p.job_id)
                for p in schedule.placements
            ),
            speed=schedule.speed,
        )

    static_ok = validate_ise(instance, schedule).ok
    dynamic_ok = simulate(instance, schedule).ok
    assert static_ok == dynamic_ok
    if mutation == "translate_all":
        assert static_ok  # harmless mutation stays feasible
