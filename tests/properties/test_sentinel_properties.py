"""Property-based tests for the numerical sentinels.

The contract under test (:mod:`repro.lp.sentinel`): perturbing a solved
``LPSolution.x`` must be *flagged* whenever the perturbed point carries real
infeasibility (or a real objective mismatch) above the sentinel tolerance,
and must *never* be flagged on the exact solutions the backends return —
zero false positives.  Both sides use a margin around :data:`SENTINEL_TOL`
(flag above ``10x``, stay silent below ``0.1x``) so the property never
depends on behavior inside the tolerance's dead band.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from dataclasses import replace
from hypothesis import given, settings

from repro.instances import long_window_instance
from repro.longwindow.lp_relaxation import build_tise_lp
from repro.lp import (
    SENTINEL_TOL,
    LinearProgram,
    LPStatus,
    Sense,
    check_solution,
    solve_highs,
    solve_simplex,
    solve_tableau,
)

_BACKENDS = (solve_highs, solve_simplex, solve_tableau)


def _random_lp(seed: int) -> LinearProgram:
    """A small random bounded-feasible LP (x = 0 feasible, box-bounded)."""
    rng = np.random.RandomState(seed)
    n = int(rng.randint(2, 7))
    m = int(rng.randint(1, 6))
    lp = LinearProgram(f"sentinel-prop-{seed}")
    cols = [
        lp.add_variable(
            objective=float(rng.randint(-5, 6)),
            upper=float(rng.randint(1, 10)),
        )
        for _ in range(n)
    ]
    for _ in range(m):
        coeffs = [(j, float(rng.randint(-3, 4))) for j in cols if rng.rand() < 0.8]
        if not coeffs:
            coeffs = [(cols[0], 1.0)]
        lp.add_constraint(coeffs, Sense.LE, float(rng.randint(0, 20)))
    return lp


def _true_residuals(lp: LinearProgram, x: np.ndarray, objective: float) -> float:
    """Brute-force scaled worst residual, derived independently in the test."""
    _, _, b_ub, _, b_eq, _, _ = lp.to_standard_arrays()
    scale = 1.0
    for b in (b_ub, b_eq):
        if b is not None and b.size:
            scale = max(scale, float(np.abs(b).max()))
    primal = float(lp.constraint_violation(x)) / (1.0 + scale)
    actual = float(lp.objective_value(x))
    gap = abs(actual - objective) / (1.0 + abs(actual))
    return max(primal, gap)


@given(seed=st.integers(0, 5000))
@settings(max_examples=20, deadline=None)
def test_exact_solutions_never_flagged(seed):
    """Zero false positives: every backend's exact answer passes the check."""
    lp = _random_lp(seed)
    for backend in _BACKENDS:
        solution = backend(lp)
        assert solution.status is LPStatus.OPTIMAL
        report = check_solution(lp, solution)
        assert report.ok, f"{backend.__name__}: {report.describe()}"
        assert report.worst < 0.1 * SENTINEL_TOL


@given(
    seed=st.integers(0, 5000),
    coord=st.integers(0, 100),
    magnitude=st.floats(1e-4, 10.0),
    sign=st.sampled_from([-1.0, 1.0]),
)
@settings(max_examples=40, deadline=None)
def test_perturbations_flagged_iff_real(seed, coord, magnitude, sign):
    """A perturbed x is flagged exactly when its true residual warrants it."""
    lp = _random_lp(seed)
    solution = solve_simplex(lp)
    assert solution.x is not None
    x = solution.x.copy()
    x[coord % x.size] += sign * magnitude
    perturbed = replace(solution, x=x)
    truth = _true_residuals(lp, x, float(solution.objective))
    report = check_solution(lp, perturbed)
    if truth > 10.0 * SENTINEL_TOL:
        assert not report.ok, (
            f"real residual {truth:.3e} went unflagged: {report.describe()}"
        )
    elif truth < 0.1 * SENTINEL_TOL:
        assert report.ok, (
            f"false positive at residual {truth:.3e}: {report.describe()}"
        )


@given(seed=st.integers(0, 2000), n=st.integers(3, 7))
@settings(max_examples=8, deadline=None)
def test_pipeline_lps_clean_and_bitflips_caught(seed, n):
    """Realistic TISE LPs: clean solves pass, bit-flipped solutions fail."""
    gen = long_window_instance(n, 1, 10.0, seed)
    built = build_tise_lp(
        gen.instance.jobs, gen.instance.calibration_length, machine_budget=1
    )
    solution = solve_simplex(built.lp)
    assert solution.status is LPStatus.OPTIMAL
    assert solution.sentinel is not None and solution.sentinel.ok
    assert solution.sentinel.repairs == 0
    report = check_solution(built.lp, solution)
    assert report.ok

    # Flip the largest coordinate hard: a gross corruption must be caught.
    x = solution.x.copy()
    worst = int(np.argmax(np.abs(x))) if x.size else 0
    x[worst] += 1e3
    flipped = check_solution(built.lp, replace(solution, x=x))
    assert not flipped.ok
