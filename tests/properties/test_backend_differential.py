"""Differential testing: HiGHS vs the in-repo simplex through the pipeline.

Both LP backends find optimal solutions, so every quantity that depends only
on the LP *value* must agree between them: the lower bound, the rounded
calibration count (``floor(mass / 0.5)``), and the unpruned total.  (The
pruned count may differ — different optimal vertices populate different
mirrored calibrations.)
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import validate_tise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowConfig, LongWindowSolver


@given(seed=st.integers(0, 2000), n=st.integers(3, 8))
@settings(max_examples=8, deadline=None)
def test_backends_agree_on_lp_dependent_quantities(seed, n):
    gen = long_window_instance(n, 1, 10.0, seed)
    highs = LongWindowSolver(LongWindowConfig(lp_backend="highs")).solve(
        gen.instance
    )
    simplex = LongWindowSolver(LongWindowConfig(lp_backend="simplex")).solve(
        gen.instance
    )
    assert simplex.lp_value == pytest.approx(highs.lp_value, abs=1e-6)
    assert simplex.rounded_calibrations == highs.rounded_calibrations
    assert simplex.unpruned_calibrations == highs.unpruned_calibrations
    assert simplex.lower_bound == pytest.approx(highs.lower_bound, abs=1e-6)
    for result in (highs, simplex):
        assert validate_tise(gen.instance, result.schedule).ok
