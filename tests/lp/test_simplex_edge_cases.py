"""Degenerate and edge-case coverage for the in-repo simplex."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import LinearProgram, LPStatus, Sense, solve_highs, solve_simplex


class TestDegenerateLPs:
    def test_redundant_equality_rows(self):
        """Duplicated equalities leave an artificial basic at zero; the
        solver must still report the right optimum."""
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=1.0)
        lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.EQ, 3.0)
        lp.add_constraint([(x, 2.0), (y, 2.0)], Sense.EQ, 6.0)  # redundant
        solution = solve_simplex(lp)
        assert solution.ok
        assert solution.objective == pytest.approx(3.0)

    def test_degenerate_vertex(self):
        """Multiple constraints active at the optimum (degenerate pivoting).

        Bland's rule must terminate."""
        lp = LinearProgram()
        x = lp.add_variable(objective=-1.0)
        y = lp.add_variable(objective=-1.0)
        lp.add_constraint([(x, 1.0)], Sense.LE, 1.0)
        lp.add_constraint([(y, 1.0)], Sense.LE, 1.0)
        lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.LE, 2.0)  # tight too
        lp.add_constraint([(x, 1.0), (y, 2.0)], Sense.LE, 3.0)  # tight too
        solution = solve_simplex(lp)
        assert solution.ok
        assert solution.objective == pytest.approx(-2.0)

    def test_zero_rhs_rows(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=-1.0, upper=4.0)
        lp.add_constraint([(x, 1.0), (y, -1.0)], Sense.GE, 0.0)
        solution = solve_simplex(lp)
        assert solution.ok
        # min x - y s.t. x >= y, y <= 4: x = y = 4 -> 0.
        assert solution.objective == pytest.approx(0.0)

    def test_all_variables_free(self):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, lower=-np.inf)
        y = lp.add_variable(objective=1.0, lower=-np.inf)
        lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.EQ, 2.0)
        lp.add_constraint([(x, 1.0), (y, -1.0)], Sense.EQ, 0.0)
        solution = solve_simplex(lp)
        assert solution.ok
        assert solution.x is not None
        assert solution.x[0] == pytest.approx(1.0)
        assert solution.x[1] == pytest.approx(1.0)

    def test_unconstrained_with_negative_costs_unbounded(self):
        lp = LinearProgram()
        lp.add_variable(objective=-1.0)
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_unconstrained_nonnegative_costs(self):
        lp = LinearProgram()
        lp.add_variable(objective=2.0)
        lp.add_variable(objective=0.0)
        solution = solve_simplex(lp)
        assert solution.ok
        assert solution.objective == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_highs_on_degenerate_random(self, seed):
        """Random LPs with many tight constraints at zero."""
        import numpy as np

        rng = np.random.default_rng(seed)
        lp = LinearProgram()
        nvar = 4
        for i in range(nvar):
            lp.add_variable(objective=float(rng.uniform(-2, 2)), upper=5.0)
        for _ in range(6):
            terms = [(i, float(rng.integers(-2, 3))) for i in range(nvar)]
            lp.add_constraint(terms, Sense.LE, float(rng.choice([0.0, 1.0, 4.0])))
        h = solve_highs(lp)
        s = solve_simplex(lp)
        assert h.status == s.status
        if h.ok:
            assert s.objective == pytest.approx(h.objective, abs=1e-6)
