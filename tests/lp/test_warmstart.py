"""Warm-started revised-simplex solves: basis reuse, fallback, telemetry.

The contract under test: passing ``warm_basis`` can only ever *speed up* a
solve — re-solving an unchanged model restarts at the old vertex with zero
pivots, a basis from a mutated model resumes phase 2 from that vertex, and
a stale basis (wrong shape, duplicated columns, infeasible point) silently
falls back to an ordinary cold phase-1 start.  Results must be identical
to cold solves in every case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StageTimeoutError
from repro.core.resilience import SolveBudget, budget_scope
from repro.lp import (
    Basis,
    BasisStash,
    LinearProgram,
    Sense,
    content_key,
    default_stash,
    solve_highs,
    solve_simplex,
)
from repro.testing import FakeClock


def _knapsack_lp(capacity: float = 4.0) -> LinearProgram:
    lp = LinearProgram("knap")
    x = lp.add_variable(objective=-3.0, upper=1.0)
    y = lp.add_variable(objective=-2.0, upper=1.0)
    z = lp.add_variable(objective=-4.0, upper=1.0)
    lp.add_constraint([(x, 2.0), (y, 1.0), (z, 3.0)], Sense.LE, capacity)
    return lp


def _mixed_lp(rhs: float = 4.0) -> LinearProgram:
    """EQ + GE rows so phase 1 genuinely runs on a cold start."""
    lp = LinearProgram("mixed")
    x = lp.add_variable(objective=1.0)
    y = lp.add_variable(objective=2.0)
    z = lp.add_variable(objective=0.5, upper=3.0)
    lp.add_constraint([(x, 1.0), (y, 1.0), (z, 1.0)], Sense.EQ, rhs)
    lp.add_constraint([(x, 1.0), (y, -1.0)], Sense.GE, 1.0)
    return lp


class TestBasis:
    def test_matches_shape(self):
        basis = Basis(m=2, n=5, basic=(0, 3))
        assert basis.matches(2, 5)
        assert not basis.matches(3, 5)
        assert not basis.matches(2, 6)

    def test_solution_basis_round_trips(self):
        sol = solve_simplex(_mixed_lp())
        assert sol.ok and sol.basis is not None
        assert sol.basis.matches(sol.basis.m, sol.basis.n)
        assert len(sol.basis.basic) == sol.basis.m


class TestContentKey:
    def test_deterministic_and_input_sensitive(self):
        a = content_key("tise-lp", (1, 2.0), 10.0)
        assert a == content_key("tise-lp", (1, 2.0), 10.0)
        assert a != content_key("tise-lp", (1, 2.5), 10.0)
        assert a != content_key("other", (1, 2.0), 10.0)


class TestBasisStash:
    def test_lru_eviction_and_counters(self):
        stash = BasisStash(maxsize=2)
        b = Basis(m=1, n=2, basic=(0,))
        stash.put("a", b)
        stash.put("b", b)
        assert stash.get("a") is b  # refreshes "a"
        stash.put("c", b)  # evicts "b", the least recently used
        assert stash.get("b") is None
        assert stash.get("a") is b and stash.get("c") is b
        snap = stash.snapshot()
        assert snap["entries"] == 2
        assert snap["hits"] == 3 and snap["misses"] == 1

    def test_clear_evicts_everything_and_counts(self):
        stash = BasisStash(maxsize=4)
        b = Basis(m=1, n=2, basic=(0,))
        stash.put("a", b)
        stash.put("b", b)
        assert stash.clear() == 2
        assert len(stash) == 0
        assert stash.get("a") is None
        snap = stash.snapshot()
        assert snap["evictions"] == 2

    def test_clear_empty_is_a_noop(self):
        stash = BasisStash()
        assert stash.clear() == 0
        assert stash.snapshot()["evictions"] == 0

    def test_discard_counts_as_eviction(self):
        stash = BasisStash()
        stash.put("a", Basis(m=1, n=2, basic=(0,)))
        assert stash.discard("a") is True
        assert stash.discard("a") is False
        assert stash.snapshot()["evictions"] == 1

    def test_default_stash_is_a_singleton(self):
        assert default_stash() is default_stash()


class TestWarmRestart:
    def test_unchanged_model_restarts_with_zero_pivots(self):
        lp = _mixed_lp()
        cold = solve_simplex(lp)
        warm = solve_simplex(lp, warm_basis=cold.basis)
        assert warm.ok and warm.warm_started
        assert warm.iterations == 0
        assert warm.objective == cold.objective
        assert np.array_equal(warm.x, cold.x)

    def test_cold_solves_are_not_marked_warm(self):
        sol = solve_simplex(_mixed_lp())
        assert not sol.warm_started

    def test_mutated_sequence_matches_cold_solves(self):
        """Carrying the previous basis across a drifting RHS must give the
        same optimum as solving each instance cold (and as HiGHS)."""
        basis = None
        for rhs in (4.0, 4.5, 5.0, 3.0, 6.5):
            lp = _mixed_lp(rhs)
            warm = solve_simplex(lp, warm_basis=basis)
            cold = solve_simplex(lp)
            reference = solve_highs(lp)
            assert warm.ok and cold.ok
            assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
            assert warm.objective == pytest.approx(reference.objective, abs=1e-6)
            assert lp.constraint_violation(warm.x) < 1e-7
            basis = warm.basis

    def test_stale_shape_falls_back_to_cold(self):
        donor = solve_simplex(_knapsack_lp())  # 1 row; _mixed_lp has 2
        sol = solve_simplex(_mixed_lp(), warm_basis=donor.basis)
        assert sol.ok and not sol.warm_started
        assert sol.objective == pytest.approx(solve_simplex(_mixed_lp()).objective)

    def test_corrupt_basis_falls_back_to_cold(self):
        cold = solve_simplex(_mixed_lp())
        assert cold.basis is not None
        m, n = cold.basis.m, cold.basis.n
        corrupt = Basis(m=m, n=n, basic=(0,) * m)  # duplicated column
        sol = solve_simplex(_mixed_lp(), warm_basis=corrupt)
        assert sol.ok and not sol.warm_started
        assert sol.objective == pytest.approx(cold.objective)

    def test_infeasible_stale_point_falls_back_to_cold(self):
        """A basis whose vertex is no longer feasible for the new data must
        trigger the crossover-to-phase-1 path, not a wrong answer."""
        donor = solve_simplex(_mixed_lp(4.0))
        lp = _mixed_lp(-1.0)  # EQ rhs now negative: old vertex infeasible
        warm = solve_simplex(lp, warm_basis=donor.basis)
        cold = solve_simplex(lp)
        assert warm.status is cold.status
        if cold.ok:
            assert warm.objective == pytest.approx(cold.objective)


class TestSolverTelemetry:
    def test_solution_carries_counters(self):
        sol = solve_simplex(_mixed_lp())
        assert sol.iterations > 0
        assert sol.refactorizations >= 0
        assert sol.solve_ms > 0.0

    def test_telemetry_dict_is_flat_floats(self):
        cold = solve_simplex(_mixed_lp())
        warm = solve_simplex(_mixed_lp(), warm_basis=cold.basis)
        tele = warm.telemetry()
        assert set(tele) >= {"iterations", "refactorizations", "solve_ms", "warm_started"}
        assert all(isinstance(v, float) for v in tele.values())
        assert tele["warm_started"] == 1.0
        assert cold.telemetry()["warm_started"] == 0.0


class TestBudgetStillPolled:
    """The rewritten pivot loop must keep the legacy timeout contract."""

    def test_expired_time_limit_raises_stage_timeout(self):
        with pytest.raises(StageTimeoutError) as exc_info:
            solve_simplex(_mixed_lp(), time_limit=-1.0)
        err = exc_info.value
        assert err.stage == "lp"
        assert err.backend == "simplex"
        assert "simplex exceeded its time limit" in str(err)

    def test_ambient_budget_raises_stage_timeout(self):
        clock = FakeClock(step=10.0)
        with budget_scope(SolveBudget(wall_clock=5.0, clock=clock)):
            with pytest.raises(StageTimeoutError):
                solve_simplex(_mixed_lp())

    def test_warm_restart_also_polls(self):
        cold = solve_simplex(_mixed_lp())
        with pytest.raises(StageTimeoutError):
            solve_simplex(_mixed_lp(), warm_basis=cold.basis, time_limit=-1.0)
