"""Tests for the LP model builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import LinearProgram, Sense


def test_add_variables_and_names():
    lp = LinearProgram("t")
    x = lp.add_variable(objective=1.0, name="x")
    ys = lp.add_variables(3, objective=0.0, prefix="y")
    assert lp.num_variables == 4
    assert lp.variable_name(x) == "x"
    assert lp.variable_name(ys[2]) == "y2"


def test_bad_bounds_rejected():
    lp = LinearProgram()
    with pytest.raises(ValueError):
        lp.add_variable(lower=2.0, upper=1.0)


def test_constraint_index_validation():
    lp = LinearProgram()
    lp.add_variable()
    with pytest.raises(IndexError):
        lp.add_constraint([(5, 1.0)], Sense.LE, 0.0)


def test_standard_arrays_split_and_flip():
    lp = LinearProgram()
    x = lp.add_variable(objective=1.0)
    y = lp.add_variable(objective=2.0)
    lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.GE, 4.0)   # -> -x -y <= -4
    lp.add_constraint([(x, 1.0)], Sense.LE, 3.0)
    lp.add_constraint([(y, 2.0)], Sense.EQ, 6.0)
    c, a_ub, b_ub, a_eq, b_eq, lb, ub = lp.to_standard_arrays()
    assert c.tolist() == [1.0, 2.0]
    assert a_ub.shape == (2, 2)
    dense = np.asarray(a_ub.todense())
    assert dense[0].tolist() == [-1.0, -1.0] and b_ub[0] == -4.0
    assert dense[1].tolist() == [1.0, 0.0] and b_ub[1] == 3.0
    assert np.asarray(a_eq.todense()).tolist() == [[0.0, 2.0]]
    assert b_eq.tolist() == [6.0]


def test_standard_arrays_none_blocks():
    lp = LinearProgram()
    lp.add_variable()
    _, a_ub, b_ub, a_eq, b_eq, _, _ = lp.to_standard_arrays()
    assert a_ub is None and b_ub is None
    assert a_eq is None and b_eq is None


def test_constraint_violation_and_objective():
    lp = LinearProgram()
    x = lp.add_variable(objective=3.0, upper=5.0)
    lp.add_constraint([(x, 1.0)], Sense.LE, 2.0)
    assert lp.constraint_violation(np.array([1.0])) == pytest.approx(0.0)
    assert lp.constraint_violation(np.array([4.0])) == pytest.approx(2.0)
    assert lp.constraint_violation(np.array([6.0])) == pytest.approx(4.0)
    assert lp.constraint_violation(np.array([-1.0])) == pytest.approx(1.0)
    assert lp.objective_value(np.array([2.0])) == pytest.approx(6.0)


def test_zero_coefficients_skipped():
    lp = LinearProgram()
    x = lp.add_variable()
    y = lp.add_variable()
    lp.add_constraint([(x, 0.0), (y, 1.0)], Sense.LE, 1.0)
    _, a_ub, _, _, _, _, _ = lp.to_standard_arrays()
    assert a_ub.nnz == 1
