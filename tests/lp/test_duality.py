"""Strong-duality certification of the HiGHS backend's optima.

The library's headline lower bound is an LP value; these tests verify it
independently via the dual: for every solved LP (variables with infinite
upper bounds), ``b_ub . y_ub + b_eq . y_eq`` must equal the primal optimum.
"""

from __future__ import annotations

import pytest

from repro.instances import long_window_instance
from repro.longwindow import build_tise_lp
from repro.lp import LinearProgram, Sense, solve_highs


def test_simple_duality():
    lp = LinearProgram()
    x = lp.add_variable(objective=1.0)
    y = lp.add_variable(objective=2.0)
    lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.GE, 4.0)
    solution = solve_highs(lp)
    _, _, b_ub, _, b_eq, _, _ = lp.to_standard_arrays()
    dual = solution.dual_objective(b_ub, b_eq)
    assert dual == pytest.approx(solution.objective, abs=1e-8)


def test_equality_duality():
    lp = LinearProgram()
    x = lp.add_variable(objective=3.0)
    y = lp.add_variable(objective=1.0)
    lp.add_constraint([(x, 1.0), (y, 2.0)], Sense.EQ, 6.0)
    lp.add_constraint([(x, 1.0)], Sense.GE, 1.0)
    solution = solve_highs(lp)
    _, _, b_ub, _, b_eq, _, _ = lp.to_standard_arrays()
    assert solution.dual_objective(b_ub, b_eq) == pytest.approx(
        solution.objective, abs=1e-8
    )


@pytest.mark.parametrize("seed", range(5))
def test_tise_lp_duality_certificate(seed):
    """The TISE LP lower bound carries a matching dual certificate.

    All TISE LP variables are unbounded above, so the dual objective over
    rows alone certifies the optimum exactly.
    """
    T = 10.0
    gen = long_window_instance(10, 2, T, seed)
    model = build_tise_lp(gen.instance.jobs, T, 6)
    solution = solve_highs(model.lp)
    assert solution.ok
    _, _, b_ub, _, b_eq, _, _ = model.lp.to_standard_arrays()
    dual = solution.dual_objective(b_ub, b_eq)
    assert dual is not None
    assert dual == pytest.approx(solution.objective, abs=1e-6)


def test_duals_absent_from_simplex_backend():
    from repro.lp import solve_simplex

    lp = LinearProgram()
    x = lp.add_variable(objective=1.0)
    lp.add_constraint([(x, 1.0)], Sense.GE, 2.0)
    solution = solve_simplex(lp)
    assert solution.ok
    assert solution.dual_ineq is None
    assert solution.dual_objective(None, None) is None
