"""Cross-checked tests for the HiGHS backend and the in-repo solvers.

The central property: on any random bounded-feasible LP, every solver —
the revised simplex, the preserved full-tableau reference, and HiGHS —
returns the same optimal objective (the in-repo solvers are independently
implemented substrates, HiGHS the reference).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.lp import (
    LinearProgram,
    LPStatus,
    Sense,
    get_backend,
    solve_highs,
    solve_simplex,
    solve_tableau,
)


def _knapsack_lp():
    lp = LinearProgram("knap")
    x = lp.add_variable(objective=-3.0, upper=1.0)
    y = lp.add_variable(objective=-2.0, upper=1.0)
    z = lp.add_variable(objective=-4.0, upper=1.0)
    lp.add_constraint([(x, 2.0), (y, 1.0), (z, 3.0)], Sense.LE, 4.0)
    return lp


@pytest.mark.parametrize("solve", [solve_highs, solve_simplex, solve_tableau])
class TestBothBackends:
    def test_simple_min(self, solve):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=2.0)
        lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.GE, 4.0)
        lp.add_constraint([(x, 1.0)], Sense.LE, 3.0)
        sol = solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(5.0)
        assert sol.x is not None and sol.x[0] == pytest.approx(3.0)

    def test_fractional_knapsack(self, solve):
        sol = solve(_knapsack_lp())
        assert sol.ok
        assert sol.objective == pytest.approx(-3.0 - 2.0 / 3 * 0 - 4.0 + 2.0 / 3 * 0 - 0, rel=1e-6) or True
        # LP relaxation optimum: take x=1, z=... capacity 4: x(2)+z(3)=5>4,
        # best density: x (1.5/unit), z (4/3/unit), y (2/unit) -> y=1, x=1,
        # remaining 1 -> z=1/3: value -(2+3+4/3) = -6.3333.
        assert sol.objective == pytest.approx(-(2 + 3 + 4.0 / 3), rel=1e-9)

    def test_infeasible(self, solve):
        lp = LinearProgram()
        x = lp.add_variable()
        lp.add_constraint([(x, 1.0)], Sense.GE, 5.0)
        lp.add_constraint([(x, 1.0)], Sense.LE, 1.0)
        assert solve(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self, solve):
        lp = LinearProgram()
        x = lp.add_variable(objective=-1.0)
        lp.add_constraint([(x, -1.0)], Sense.LE, 0.0)  # x >= 0 (redundant)
        assert solve(lp).status is LPStatus.UNBOUNDED

    def test_equality_constraints(self, solve):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0)
        y = lp.add_variable(objective=1.0)
        lp.add_constraint([(x, 1.0), (y, 2.0)], Sense.EQ, 4.0)
        sol = solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(2.0)  # x=0, y=2

    def test_empty_model(self, solve):
        lp = LinearProgram()
        sol = solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(0.0)

    def test_upper_bounds_respected(self, solve):
        lp = LinearProgram()
        x = lp.add_variable(objective=-1.0, upper=2.5)
        sol = solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(-2.5)

    def test_free_variable(self, solve):
        lp = LinearProgram()
        x = lp.add_variable(objective=1.0, lower=-np.inf)
        lp.add_constraint([(x, 1.0)], Sense.GE, -7.0)
        sol = solve(lp)
        assert sol.ok
        assert sol.objective == pytest.approx(-7.0)


class TestBackendRegistry:
    def test_lookup(self):
        assert get_backend("highs") is not None
        assert get_backend("simplex") is not None
        assert get_backend("tableau") is not None
        with pytest.raises(KeyError):
            get_backend("cplex")


@given(
    data=st.data(),
    nvar=st.integers(1, 5),
    ncon=st.integers(1, 6),
)
@settings(max_examples=30)
def test_simplex_matches_highs_on_random_bounded_lps(data, nvar, ncon):
    """Random LPs with box-bounded variables are always feasible and bounded;
    both solvers must agree on the optimum."""
    lp = LinearProgram("rand")
    for i in range(nvar):
        obj = data.draw(st.floats(-5, 5), label=f"c{i}")
        lp.add_variable(objective=obj, upper=data.draw(st.floats(0.5, 10), label=f"u{i}"))
    for k in range(ncon):
        terms = [
            (i, data.draw(st.floats(-3, 3), label=f"a{k}{i}"))
            for i in range(nvar)
        ]
        # Nonnegative rhs for LE keeps x = 0 feasible.
        rhs = data.draw(st.floats(0.0, 20.0), label=f"b{k}")
        lp.add_constraint(terms, Sense.LE, rhs)
    h = solve_highs(lp)
    s = solve_simplex(lp)
    t = solve_tableau(lp)
    assert h.ok and s.ok and t.ok
    assert s.objective == pytest.approx(h.objective, abs=1e-6)
    assert t.objective == pytest.approx(h.objective, abs=1e-6)
    # All solutions satisfy the constraints independently.
    assert lp.constraint_violation(h.x) < 1e-6
    assert lp.constraint_violation(s.x) < 1e-6
    assert lp.constraint_violation(t.x) < 1e-6
