"""The session/offline equivalence property.

A session fed every job at t=0 with commit horizon 0 never commits
anything (a calibration starting at ``s`` commits only once ``s < now``,
tolerance-strict), so its final schedule is just the offline solver's
answer to the accumulated instance — with releases clamped to the session
clock (time starts at 0 for a live session) and machines compacted.  This
pins the online layer to the paper's offline guarantees: streaming adds
durability and commitment, not a different algorithm.
"""

from __future__ import annotations

from dataclasses import replace

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import validate_ise
from repro.core.job import Instance
from repro.core.solver import solve_ise
from repro.instances import mixed_instance, short_window_instance
from repro.online import ISESession

_FAMILIES = {"mixed": mixed_instance, "short": short_window_instance}


@given(
    seed=st.integers(0, 1000),
    n=st.integers(3, 10),
    family=st.sampled_from(sorted(_FAMILIES)),
)
@settings(max_examples=8, deadline=None)
def test_session_at_t0_matches_offline_solver(seed, n, family):
    gen = _FAMILIES[family](n, 2, 10.0, seed)
    instance = gen.instance
    # The session clock starts at 0, so a release in the past is clamped
    # to "available now" — mirror that in the offline reference instance.
    clamped = Instance(
        jobs=tuple(
            replace(job, release=max(job.release, 0.0))
            for job in instance.jobs
        ),
        machines=instance.machines,
        calibration_length=instance.calibration_length,
        name=instance.name,
    )
    offline = solve_ise(clamped)

    session = ISESession.create(
        None,
        f"prop-{family}-{seed}",
        machines=instance.machines,
        calibration_length=instance.calibration_length,
        commit_horizon=0.0,
    )
    for job in instance.jobs:
        session.submit_job(
            job.job_id,
            release=job.release,
            deadline=job.deadline,
            processing=job.processing,
            at=0.0,
        )

    assert session.committed_calibrations == ()
    online = session.schedule
    # Machine numbering is not canonical (the session compacts machines so
    # augmentation blocks stack densely) — compare machine-invariantly.
    assert len(online.calibrations) == offline.num_calibrations
    assert sorted(c.start for c in online.calibrations) == sorted(
        c.start for c in offline.schedule.calibrations
    )
    assert {(p.job_id, p.start) for p in online.placements} == {
        (p.job_id, p.start) for p in offline.schedule.placements
    }
    assert validate_ise(clamped, online).ok


@given(seed=st.integers(0, 500))
@settings(max_examples=4, deadline=None)
def test_streamed_session_stays_feasible_and_never_retracts(seed):
    """Release-ordered streaming with a horizon: commits only grow."""
    gen = mixed_instance(8, 2, 10.0, seed)
    instance = gen.instance
    session = ISESession.create(
        None,
        f"stream-{seed}",
        machines=instance.machines,
        calibration_length=instance.calibration_length,
        commit_horizon=2.0,
    )
    committed: set[tuple[float, int]] = set()
    for job in sorted(instance.jobs, key=lambda j: j.release):
        session.submit_job(
            job.job_id,
            release=job.release,
            deadline=job.deadline,
            processing=job.processing,
            at=max(job.release, 0.0),  # a live session's clock starts at 0
        )
        now = {(c.start, c.machine) for c in session.committed_calibrations}
        assert committed <= now  # never retract
        committed = now
    session.advance(instance.horizon[1] + instance.calibration_length)
    final = {(c.start, c.machine) for c in session.committed_calibrations}
    assert committed <= final
    # every job sits inside a calibration and meets its window
    assert validate_ise(instance, session.schedule).ok
