"""Crash-injection chaos for durable sessions.

The contract under test: a process kill at *any* journal append — before
the first commit, mid-commit (between an operation record and its
witness records), or after N commits — recovers to a byte-identical
state digest, never raises :class:`CommitRetractionError`, never loses a
committed calibration, and keeps duplicate submission a no-op.  The
sweep below kills at every append index the workload generates, so all
three named crash classes are covered by construction.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.core.checkpoint import TornTailWarning
from repro.online import ISESession
from repro.testing import SimulatedProcessKill, inject_session_crash

# (kind, *payload); advances are re-applied with max(to, now) so a client
# can blindly re-run its script after a crash (idempotent recovery).
_WORKLOAD = [
    ("job", 1, 0.0, 12.0, 4.0, 0.0),
    ("job", 2, 0.0, 10.0, 2.0, 0.0),
    ("advance", 3.0),
    ("job", 3, 3.0, 20.0, 5.0, 3.0),
    ("advance", 8.0),
    ("job", 4, 8.0, 30.0, 3.0, 8.0),
    ("advance", 40.0),
]


def _new_session(directory: Path) -> ISESession:
    return ISESession.create(
        directory, "chaos", machines=2, calibration_length=6.0,
        commit_horizon=1.5,
    )


def _apply(session: ISESession, op: tuple) -> None:
    if op[0] == "job":
        _, job_id, release, deadline, processing, at = op
        session.submit_job(
            job_id, release=release, deadline=deadline,
            processing=processing, at=at,
        )
    else:
        session.advance(max(op[1], session.now))


def _reference(tmp_path: Path) -> tuple[str, int]:
    """Final digest of an uninterrupted run, plus its total append count."""
    directory = tmp_path / "reference"
    session = _new_session(directory)
    with inject_session_crash(10**9) as probe:
        for op in _WORKLOAD:
            _apply(session, op)
    assert session.committed_calibrations  # the workload does commit
    return session.state_digest(), probe["calls"]


def test_kill_at_every_append_recovers_byte_identically(tmp_path: Path) -> None:
    expected_digest, total_appends = _reference(tmp_path)
    assert total_appends > len(_WORKLOAD)  # commits generate extra appends

    for kill_at in range(1, total_appends + 1):
        directory = tmp_path / f"kill-{kill_at}"
        crashed_committed: set[tuple[float, int]] = set()
        session: ISESession | None = None
        failed_index = 0  # kill_at=1 dies inside create() itself
        try:
            with inject_session_crash(kill_at):
                session = _new_session(directory)
                for index, op in enumerate(_WORKLOAD):
                    failed_index = index
                    _apply(session, op)
                failed_index = len(_WORKLOAD)
        except SimulatedProcessKill:
            if session is not None:
                crashed_committed = {
                    (c.start, c.machine)
                    for c in session.committed_calibrations
                }

        # Recovery must never see a retraction, for any kill point.
        recovered = ISESession.open(directory, "chaos")
        recovered_committed = {
            (c.start, c.machine) for c in recovered.committed_calibrations
        }
        # Everything the dying process had committed was journaled first.
        assert crashed_committed <= recovered_committed, f"kill_at={kill_at}"

        # Byte-identical rehydration: a second recovery from the healed
        # journal reproduces the exact same digest.
        digest = recovered.state_digest()
        recovered.close()
        assert ISESession.open(directory, "chaos").state_digest() == digest

        # Blind client re-run from the failed operation converges on the
        # uninterrupted run's digest (submission is idempotent).
        finishing = ISESession.open(directory, "chaos")
        for op in _WORKLOAD[failed_index:]:
            _apply(finishing, op)
        assert finishing.state_digest() == expected_digest, f"kill_at={kill_at}"


def test_duplicate_submit_is_noop_after_recovery(tmp_path: Path) -> None:
    directory = tmp_path / "dup"
    with pytest.raises(SimulatedProcessKill):
        with inject_session_crash(4):  # dies inside the second submit
            session = _new_session(directory)
            session.submit_job(1, release=0.0, deadline=12.0, processing=4.0)
            session.submit_job(2, release=0.0, deadline=10.0, processing=2.0)
    recovered = ISESession.open(directory, "chaos")
    digest = recovered.state_digest()
    receipt = recovered.submit_job(
        1, release=0.0, deadline=12.0, processing=4.0
    )
    assert receipt.replayed
    assert recovered.state_digest() == digest


def test_torn_tail_is_truncated_and_recovery_proceeds(tmp_path: Path) -> None:
    directory = tmp_path / "torn"
    torn = b'{"kind": "job", "job": 99, "release": 0'  # no newline, no sha
    with pytest.raises(SimulatedProcessKill):
        with inject_session_crash(3, torn_bytes=torn):
            session = _new_session(directory)
            session.submit_job(1, release=0.0, deadline=12.0, processing=4.0)
            session.advance(3.0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        recovered = ISESession.open(directory, "chaos")
    assert any(issubclass(w.category, TornTailWarning) for w in caught)
    # The torn operation never became durable: job 99 does not exist, and
    # the journal was truncated so the next recovery is warning-free.
    assert recovered.job_count == 1
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("error")
        again = ISESession.open(directory, "chaos")
    assert again.state_digest() == recovered.state_digest()
