"""ISESession unit tests: commits, repairs, idempotency, never-retract."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.errors import (
    CommitRetractionError,
    InvalidInstanceError,
    SessionConflictError,
)
from repro.online import ISESession


def _memory_session(**kwargs) -> ISESession:
    defaults = dict(machines=2, calibration_length=6.0, commit_horizon=0.0)
    defaults.update(kwargs)
    return ISESession.create(None, "mem", **defaults)


def test_create_rejects_bad_parameters() -> None:
    with pytest.raises(InvalidInstanceError):
        _memory_session(machines=0)
    with pytest.raises(InvalidInstanceError):
        _memory_session(calibration_length=0.0)
    with pytest.raises(SessionConflictError):
        _memory_session(commit_horizon=-1.0)


def test_submit_returns_a_placement_receipt() -> None:
    session = _memory_session()
    receipt = session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    assert receipt.job_id == 1
    assert not receipt.replayed
    assert receipt.start >= 0.0
    assert session.job_count == 1
    assert session.replans == 1


def test_duplicate_submit_is_a_no_op() -> None:
    session = _memory_session()
    first = session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    digest = session.state_digest()
    again = session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    assert again.replayed
    assert (again.start, again.machine) == (first.start, first.machine)
    assert session.state_digest() == digest
    assert session.replans == 1


def test_same_id_different_fields_conflicts() -> None:
    session = _memory_session()
    session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    with pytest.raises(SessionConflictError):
        session.submit_job(1, release=0.0, deadline=10.0, processing=4.0)


def test_backdated_arrival_is_rejected() -> None:
    session = _memory_session()
    session.advance(5.0)
    with pytest.raises(SessionConflictError):
        session.submit_job(1, release=0.0, deadline=10.0, processing=3.0, at=2.0)


def test_unmeetable_deadline_is_rejected_without_state_change() -> None:
    # The static window [0, 4) fits the job, but arriving at t=2 leaves
    # only 2.0 of room — a session-level (not instance-level) rejection.
    session = _memory_session()
    session.advance(2.0)
    digest = session.state_digest()
    with pytest.raises(SessionConflictError):
        session.submit_job(1, release=0.0, deadline=4.0, processing=3.0)
    assert session.state_digest() == digest
    assert session.job_count == 0


def test_processing_longer_than_calibration_is_rejected() -> None:
    session = _memory_session()
    with pytest.raises(InvalidInstanceError):
        session.submit_job(1, release=0.0, deadline=100.0, processing=7.0)


def test_clock_cannot_move_backwards() -> None:
    session = _memory_session()
    session.advance(5.0)
    with pytest.raises(SessionConflictError):
        session.advance(1.0)


def test_advance_commits_calibrations_past_the_horizon() -> None:
    session = _memory_session()
    session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    assert session.committed_calibrations == ()
    outcome = session.advance(100.0)
    assert outcome.newly_committed
    assert session.committed_calibrations
    # every placed job is now locked inside a committed calibration
    assert session.job_count == 1


def test_commit_horizon_commits_on_submit() -> None:
    # With a positive horizon, a calibration starting "soon" commits the
    # moment it is planned.
    session = _memory_session(commit_horizon=1.0)
    receipt = session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    assert receipt.locked
    assert receipt.newly_committed
    assert session.committed_calibrations


def test_local_repair_fills_committed_spare_capacity() -> None:
    session = _memory_session(commit_horizon=1.0)
    session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    assert session.replans == 1
    # A second short job fits in the committed calibration's leftover 3.0.
    receipt = session.submit_job(2, release=0.0, deadline=10.0, processing=2.0)
    assert receipt.repaired
    assert receipt.locked
    assert session.repairs == 1
    assert session.replans == 1  # no second solve
    assert len(session.committed_calibrations) == 1


def test_closed_session_rejects_mutations() -> None:
    session = _memory_session()
    session.close()
    with pytest.raises(SessionConflictError):
        session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    with pytest.raises(SessionConflictError):
        session.advance(1.0)


def test_never_retract_check_rejects_dropped_calibration() -> None:
    # White-box: a candidate state missing a committed calibration must be
    # refused before installation.
    session = _memory_session(commit_horizon=1.0)
    session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    assert session.committed_calibrations
    with pytest.raises(CommitRetractionError) as info:
        session._check_never_retract({}, set(session._locked))
    assert info.value.retracted


def test_never_retract_check_rejects_unlocked_job() -> None:
    session = _memory_session(commit_horizon=1.0)
    session.submit_job(1, release=0.0, deadline=10.0, processing=3.0)
    with pytest.raises(CommitRetractionError):
        session._check_never_retract(dict(session._committed), set())


def test_journal_create_refuses_to_clobber(tmp_path: Path) -> None:
    from repro.core.errors import InvalidArtifactError

    ISESession.create(tmp_path, "dup", machines=1, calibration_length=5.0)
    with pytest.raises(InvalidArtifactError):
        ISESession.create(tmp_path, "dup", machines=1, calibration_length=5.0)


def test_reopen_reproduces_digest_and_bumps_fence(tmp_path: Path) -> None:
    session = ISESession.create(
        tmp_path, "s", machines=2, calibration_length=6.0, commit_horizon=1.0
    )
    session.submit_job(1, release=0.0, deadline=12.0, processing=4.0)
    session.submit_job(2, release=1.0, deadline=14.0, processing=2.0, at=1.0)
    session.advance(3.0)
    digest, fence = session.state_digest(), session.fence
    session.close()

    recovered = ISESession.open(tmp_path, "s")
    assert recovered.state_digest() == digest
    assert recovered.fence == fence + 1
    # idempotent replay still holds after recovery
    receipt = recovered.submit_job(1, release=0.0, deadline=12.0, processing=4.0)
    assert receipt.replayed


def test_os_sync_policy_survives_process_style_reopen(tmp_path: Path) -> None:
    # sync="os" skips the per-mutation fdatasync but still flushes every
    # batch to the kernel, so anything short of a machine crash (including
    # SIGKILL) replays byte-identically.
    session = ISESession.create(
        tmp_path, "fast", machines=1, calibration_length=6.0,
        commit_horizon=1.0, sync="os",
    )
    session.submit_job(1, release=0.0, deadline=12.0, processing=4.0)
    session.advance(5.0)
    digest = session.state_digest()
    committed = set(session.committed_calibrations)
    session.close()

    recovered = ISESession.open(tmp_path, "fast")
    assert recovered.state_digest() == digest
    assert set(recovered.committed_calibrations) == committed
    assert committed  # the horizon actually locked something


def test_unknown_sync_policy_is_rejected(tmp_path: Path) -> None:
    with pytest.raises(ValueError):
        ISESession.create(
            tmp_path, "bad", machines=1, calibration_length=6.0, sync="lazy"
        )
