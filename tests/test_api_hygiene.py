"""Release hygiene meta-tests: docstrings, __all__ consistency, imports.

These keep the public surface honest as the library grows: every public
module, class, and function must carry a docstring, and everything exported
via ``__all__`` must actually exist.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_exist(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def _public_members():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    yield f"{module_name}.{name}", obj


@pytest.mark.parametrize("qualname,obj", list(_public_members()))
def test_public_objects_documented(qualname, obj):
    assert inspect.getdoc(obj), f"{qualname} lacks a docstring"


def test_version_exposed():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)
