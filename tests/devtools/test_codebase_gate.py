"""The lint gate itself: ``src/repro`` must be clean, and the gate must
actually bite when a banned pattern is reintroduced.

The mypy/ruff gates run only when those tools are importable — the baked
container image ships neither, so they skip locally and run in CI's ``lint``
job (which installs the ``dev`` extra).
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import lint_paths
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def test_src_repro_is_lint_clean() -> None:
    """The pytest-integration gate: every rule, every file under src/repro."""
    report = lint_paths([SRC_REPRO])
    assert report.files_checked > 50
    assert report.ok, "\n" + report.to_text()


def test_reintroduced_float_equality_fails_the_gate(tmp_path: Path) -> None:
    """Acceptance check from the issue: putting a raw float ``==`` back into
    (a copy of) longwindow/rounding.py must make repro-lint exit nonzero
    with ISE001 at the injected line."""
    original = (SRC_REPRO / "longwindow" / "rounding.py").read_text()
    injected = original + (
        "\n\ndef _reintroduced(v: float) -> bool:\n"
        "    return v == 0.0\n"
    )
    target = tmp_path / "rounding.py"
    target.write_text(injected)

    report = lint_paths([target])
    assert not report.ok
    assert any(d.code == "ISE001" for d in report.diagnostics), report.to_text()

    assert main([str(target)]) == 1


def test_longwindow_rounding_is_currently_clean() -> None:
    report = lint_paths([SRC_REPRO / "longwindow" / "rounding.py"])
    assert report.ok, report.to_text()


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI lint job installs the dev extra)",
)
def test_mypy_strict_src_repro() -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(
    importlib.util.find_spec("ruff") is None,
    reason="ruff not installed (CI lint job installs the dev extra)",
)
def test_ruff_check_src_repro() -> None:
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
