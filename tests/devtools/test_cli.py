"""Exit codes and output formats of the ``repro-lint`` CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.cli import main

CLEAN = "def double(x: float) -> float:\n    return 2.0 * x\n"
DIRTY = "def is_unit(p: float) -> bool:\n    return p == 1.0\n"


@pytest.fixture()
def clean_file(tmp_path: Path) -> Path:
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    return target


@pytest.fixture()
def dirty_file(tmp_path: Path) -> Path:
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    return target


def test_clean_file_exits_zero(capsys, clean_file: Path) -> None:
    assert main([str(clean_file)]) == 0
    out = capsys.readouterr().out
    assert "[clean]" in out


def test_findings_exit_one(capsys, dirty_file: Path) -> None:
    assert main([str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "ISE001" in out
    assert f"{dirty_file}:2:" in out


def test_json_format_is_machine_readable(capsys, dirty_file: Path) -> None:
    assert main(["--format", "json", str(dirty_file)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["counts"].get("ISE001") == 1
    diag = payload["diagnostics"][0]
    assert diag["code"] == "ISE001"
    assert diag["line"] == 2


def test_select_restricts_rules(capsys, dirty_file: Path) -> None:
    assert main(["--select", "ISE009", str(dirty_file)]) == 0


def test_ignore_drops_rules(capsys, dirty_file: Path) -> None:
    assert main(["--ignore", "ISE001", str(dirty_file)]) == 0


def test_unknown_rule_is_usage_error(capsys, dirty_file: Path) -> None:
    assert main(["--select", "ISE999", str(dirty_file)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_no_paths_is_usage_error(capsys) -> None:
    assert main([]) == 2
    assert "no paths" in capsys.readouterr().err


def test_no_python_files_is_usage_error(capsys, tmp_path: Path) -> None:
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 2
    assert "no python files" in capsys.readouterr().err


def test_list_rules_prints_registry(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("ISE001", "ISE011"):
        assert code in out


def test_module_invocation_matches_console_script(dirty_file: Path) -> None:
    """`python -m repro.devtools.cli` is the installless equivalent of the
    `repro-lint` console script declared in pyproject.toml."""
    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.cli", str(dirty_file)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 1
    assert "ISE001" in proc.stdout
