"""Fixture-driven tests for every ``repro-lint`` rule.

Each rule gets three fixtures: a snippet that must trigger it, the same
snippet with a ``# repro-lint: disable=CODE`` suppression (must be clean),
and a compliant rewrite (must be clean without any suppression).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.devtools import lint_paths

# Solver-boundary rules (ISE007/ISE008) only look at files under an ``mm``
# or ``lp`` package, so some fixtures need to live at a specific path.
MM_PATH = Path("mm") / "backend.py"
PLAIN_PATH = Path("module.py")


@dataclass(frozen=True)
class RuleCase:
    """One rule's (hit, suppressed, clean) fixture triple."""

    code: str
    hit: str
    suppressed: str
    clean: str
    rel_path: Path = PLAIN_PATH


CASES = [
    RuleCase(
        code="ISE001",
        hit=(
            "def is_unit(p: float) -> bool:\n"
            "    return p == 1.0\n"
        ),
        suppressed=(
            "def is_unit(p: float) -> bool:\n"
            "    return p == 1.0  # repro-lint: disable=ISE001\n"
        ),
        clean=(
            "from repro.core.tolerance import close\n"
            "\n"
            "def is_unit(p: float) -> bool:\n"
            "    return close(p, 1.0)\n"
        ),
    ),
    RuleCase(
        code="ISE002",
        hit=(
            "def nearly_zero(x: float) -> bool:\n"
            "    return abs(x) < 1e-9\n"
        ),
        suppressed=(
            "def nearly_zero(x: float) -> bool:\n"
            "    return abs(x) < 1e-9  # repro-lint: disable=ISE002\n"
        ),
        clean=(
            "from repro.core.tolerance import EPS\n"
            "\n"
            "def nearly_zero(x: float) -> bool:\n"
            "    return abs(x) < EPS\n"
        ),
    ),
    RuleCase(
        code="ISE003",
        hit=(
            "import random\n"
            "\n"
            "def pick(xs: list[int]) -> int:\n"
            "    return random.choice(xs)\n"
        ),
        suppressed=(
            "import random\n"
            "\n"
            "def pick(xs: list[int]) -> int:\n"
            "    return random.choice(xs)  # repro-lint: disable=ISE003\n"
        ),
        clean=(
            "import random\n"
            "\n"
            "def pick(xs: list[int], seed: int) -> int:\n"
            "    return random.Random(seed).choice(xs)\n"
        ),
    ),
    RuleCase(
        code="ISE004",
        hit=(
            "def collect(item: int, acc: list[int] = []) -> list[int]:\n"
            "    acc.append(item)\n"
            "    return acc\n"
        ),
        suppressed=(
            "def collect(item: int, acc: list[int] = []) -> list[int]:  # repro-lint: disable=ISE004\n"
            "    acc.append(item)\n"
            "    return acc\n"
        ),
        clean=(
            "def collect(item: int, acc: list[int] | None = None) -> list[int]:\n"
            "    out = [] if acc is None else acc\n"
            "    out.append(item)\n"
            "    return out\n"
        ),
    ),
    RuleCase(
        code="ISE005",
        hit=(
            "def safe(fn) -> None:\n"
            "    try:\n"
            "        fn()\n"
            "    except:\n"
            "        return None\n"
        ),
        suppressed=(
            "def safe(fn) -> None:\n"
            "    try:\n"
            "        fn()\n"
            "    except:  # repro-lint: disable=ISE005\n"
            "        return None\n"
        ),
        clean=(
            "def safe(fn) -> None:\n"
            "    try:\n"
            "        fn()\n"
            "    except ValueError:\n"
            "        return None\n"
        ),
    ),
    RuleCase(
        code="ISE006",
        hit=(
            "from repro.core.errors import LimitExceededError\n"
            "\n"
            "def attempt(fn) -> None:\n"
            "    try:\n"
            "        fn()\n"
            "    except LimitExceededError:\n"
            "        pass\n"
        ),
        suppressed=(
            "from repro.core.errors import LimitExceededError\n"
            "\n"
            "def attempt(fn) -> None:\n"
            "    try:\n"
            "        fn()\n"
            "    except LimitExceededError:  # repro-lint: disable=ISE006\n"
            "        pass\n"
        ),
        clean=(
            "from repro.core.errors import LimitExceededError\n"
            "\n"
            "def attempt(fn, fallback) -> None:\n"
            "    try:\n"
            "        fn()\n"
            "    except LimitExceededError:\n"
            "        fallback()\n"
        ),
    ),
    RuleCase(
        code="ISE007",
        rel_path=MM_PATH,
        hit=(
            "class SloppyMM:\n"
            '    """A backend that never validates its coloring."""\n'
            "\n"
            '    name = "sloppy"\n'
            "\n"
            "    def solve(self, instance, w):\n"
            '        """Return an unchecked result."""\n'
            "        return None\n"
        ),
        suppressed=(
            "class SloppyMM:  # repro-lint: disable=ISE007\n"
            '    """A backend that never validates its coloring."""\n'
            "\n"
            '    name = "sloppy"\n'
            "\n"
            "    def solve(self, instance, w):\n"
            '        """Return an unchecked result."""\n'
            "        return None\n"
        ),
        clean=(
            "from repro.mm.verify import check_mm\n"
            "\n"
            "class CarefulMM:\n"
            '    """A backend that validates every coloring it emits."""\n'
            "\n"
            '    name = "careful"\n'
            "\n"
            "    def solve(self, instance, w):\n"
            '        """Return a validated result."""\n'
            "        result = None\n"
            "        check_mm(instance, result, w)\n"
            "        return result\n"
        ),
    ),
    RuleCase(
        code="ISE008",
        rel_path=MM_PATH,
        hit=(
            "from repro.mm.verify import check_mm\n"
            "\n"
            "class UndocumentedMM:\n"
            '    name = "undocumented"\n'
            "\n"
            "    def solve(self, instance, w):\n"
            '        """Return a validated result."""\n'
            "        result = None\n"
            "        check_mm(instance, result, w)\n"
            "        return result\n"
        ),
        suppressed=(
            "from repro.mm.verify import check_mm\n"
            "\n"
            "class UndocumentedMM:  # repro-lint: disable=ISE008\n"
            '    name = "undocumented"\n'
            "\n"
            "    def solve(self, instance, w):\n"
            '        """Return a validated result."""\n'
            "        result = None\n"
            "        check_mm(instance, result, w)\n"
            "        return result\n"
        ),
        clean=(
            "from repro.mm.verify import check_mm\n"
            "\n"
            "class DocumentedMM:\n"
            '    """A fully documented backend."""\n'
            "\n"
            '    name = "documented"\n'
            "\n"
            "    def solve(self, instance, w):\n"
            '        """Return a validated result."""\n'
            "        result = None\n"
            "        check_mm(instance, result, w)\n"
            "        return result\n"
        ),
    ),
    RuleCase(
        code="ISE009",
        hit=(
            "def choose(best: int | None) -> int:\n"
            "    assert best is not None\n"
            "    return best\n"
        ),
        suppressed=(
            "def choose(best: int | None) -> int:\n"
            "    assert best is not None  # repro-lint: disable=ISE009\n"
            "    return best\n"
        ),
        clean=(
            "from repro.core.errors import SolverError\n"
            "\n"
            "def choose(best: int | None) -> int:\n"
            "    if best is None:\n"
            '        raise SolverError("no candidate survived")\n'
            "    return best\n"
        ),
    ),
    RuleCase(
        code="ISE010",
        hit=(
            "def scale(x, factor):\n"
            "    return x * factor\n"
        ),
        suppressed=(
            "def scale(x, factor):  # repro-lint: disable=ISE010\n"
            "    return x * factor\n"
        ),
        clean=(
            "def scale(x: float, factor: float) -> float:\n"
            "    return x * factor\n"
        ),
    ),
    RuleCase(
        code="ISE011",
        hit=(
            "def tally(xs: list) -> dict:\n"
            "    return {x: 1 for x in xs}\n"
        ),
        suppressed=(
            "def tally(xs: list, ys: dict) -> int:  # repro-lint: disable=ISE011\n"
            "    return len(xs) + len(ys)\n"
        ),
        clean=(
            "def tally(xs: list[int]) -> dict[int, int]:\n"
            "    return {x: 1 for x in xs}\n"
        ),
    ),
    RuleCase(
        code="ISE012",
        hit=(
            "import json\n"
            "from pathlib import Path\n"
            "\n"
            "def save(path: Path, payload: dict[str, int]) -> None:\n"
            "    path.write_text(json.dumps(payload))\n"
            "\n"
            "def stream(path: Path, payload: dict[str, int]) -> None:\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
        ),
        suppressed=(
            "import json\n"
            "from pathlib import Path\n"
            "\n"
            "def save(path: Path, payload: dict[str, int]) -> None:\n"
            "    path.write_text(json.dumps(payload))  # repro-lint: disable=ISE012\n"
        ),
        clean=(
            "from pathlib import Path\n"
            "\n"
            "from repro.core.atomicio import dump_artifact\n"
            "\n"
            "def save(path: Path, payload: dict[str, int]) -> None:\n"
            "    dump_artifact(payload, path)\n"
        ),
    ),
    RuleCase(
        code="ISE013",
        hit=(
            "from concurrent.futures import BrokenExecutor\n"
            "\n"
            "def collect(future) -> object | None:\n"
            "    try:\n"
            "        return future.result()\n"
            "    except BrokenExecutor:\n"
            "        return None\n"
        ),
        suppressed=(
            "from concurrent.futures import BrokenExecutor\n"
            "\n"
            "def collect(future) -> object | None:\n"
            "    try:\n"
            "        return future.result()\n"
            "    except BrokenExecutor:  # repro-lint: disable=ISE013\n"
            "        return None\n"
        ),
        clean=(
            "import warnings\n"
            "from concurrent.futures import BrokenExecutor\n"
            "\n"
            "def collect(future) -> object | None:\n"
            "    try:\n"
            "        return future.result()\n"
            "    except BrokenExecutor as exc:\n"
            "        warnings.warn(f'worker pool died: {exc}', stacklevel=2)\n"
            "        return None\n"
        ),
    ),
    RuleCase(
        code="ISE014",
        hit=(
            "import time\n"
            "\n"
            "def backoff(seconds: float) -> None:\n"
            "    time.sleep(seconds)\n"
        ),
        suppressed=(
            "import time\n"
            "\n"
            "def backoff(seconds: float) -> None:\n"
            "    time.sleep(seconds)  # repro-lint: disable=ISE014\n"
        ),
        clean=(
            "import time\n"
            "from typing import Callable\n"
            "\n"
            "def backoff(\n"
            "    seconds: float, sleep: Callable[[float], None] = time.sleep\n"
            ") -> None:\n"
            "    sleep(seconds)\n"
        ),
    ),
    RuleCase(
        code="ISE015",
        hit=(
            "from repro.core.certify import SolveCertificate\n"
            "from repro.core.solver import ISEResult\n"
            "\n"
            "def attach(result: ISEResult, cert: SolveCertificate) -> ISEResult:\n"
            "    result.certificate = cert\n"
            "    return result\n"
        ),
        suppressed=(
            "from repro.core.certify import SolveCertificate\n"
            "from repro.core.solver import ISEResult\n"
            "\n"
            "def attach(result: ISEResult, cert: SolveCertificate) -> ISEResult:\n"
            "    result.certificate = cert  # repro-lint: disable=ISE015\n"
            "    return result\n"
        ),
        clean=(
            "from dataclasses import replace\n"
            "\n"
            "from repro.core.certify import SolveCertificate\n"
            "from repro.core.solver import ISEResult\n"
            "\n"
            "def attach(result: ISEResult, cert: SolveCertificate) -> ISEResult:\n"
            "    return replace(result, certificate=cert)\n"
        ),
    ),
    RuleCase(
        code="ISE016",
        hit=(
            "from repro.online import ISESession\n"
            "\n"
            "def tamper(session: ISESession) -> None:\n"
            "    session._now = 0.0\n"
        ),
        suppressed=(
            "from repro.online import ISESession\n"
            "\n"
            "def tamper(session: ISESession) -> None:\n"
            "    session._now = 0.0  # repro-lint: disable=ISE016\n"
        ),
        clean=(
            "from repro.online import ISESession\n"
            "\n"
            "def rewind_is_forbidden(session: ISESession, to: float) -> None:\n"
            "    session.advance(to)\n"
        ),
    ),
]

CASE_IDS = [case.code for case in CASES]


def _lint_snippet(tmp_path: Path, case: RuleCase, text: str):
    target = tmp_path / case.rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return lint_paths([target], select=[case.code])


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_rule_fires_on_violation(tmp_path: Path, case: RuleCase) -> None:
    report = _lint_snippet(tmp_path, case, case.hit)
    assert not report.ok, f"{case.code} did not fire on its fixture"
    assert all(d.code == case.code for d in report.diagnostics), report.to_text()
    assert report.diagnostics[0].line >= 1


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_rule_respects_suppression_comment(tmp_path: Path, case: RuleCase) -> None:
    report = _lint_snippet(tmp_path, case, case.suppressed)
    assert report.ok, report.to_text()


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_rule_stays_quiet_on_clean_code(tmp_path: Path, case: RuleCase) -> None:
    report = _lint_snippet(tmp_path, case, case.clean)
    assert report.ok, report.to_text()


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_file_wide_suppression(tmp_path: Path, case: RuleCase) -> None:
    text = f"# repro-lint: disable-file={case.code}\n{case.hit}"
    report = _lint_snippet(tmp_path, case, text)
    assert report.ok, report.to_text()


def test_every_registered_rule_has_a_fixture() -> None:
    from repro.devtools import ALL_RULES

    assert sorted(ALL_RULES) == sorted(CASE_IDS)


def test_ise012_exempts_the_atomicio_module(tmp_path: Path) -> None:
    # atomicio.py is the one module allowed to use the raw primitives —
    # it IS the atomic-write implementation.
    target = tmp_path / "core" / "atomicio.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "from pathlib import Path\n"
        "\n"
        "def raw(path: Path, text: str) -> None:\n"
        "    path.write_text(text)\n"
    )
    assert lint_paths([target], select=["ISE012"]).ok


def test_ise016_exempts_the_session_module(tmp_path: Path) -> None:
    # online/session.py defines ISESession and owns the never-retract
    # invariant checks — it is the one place allowed to write attributes.
    target = tmp_path / "online" / "session.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "class ISESession:\n"
        "    def _install(self, now: float) -> None:\n"
        "        self._now = now\n"
        "\n"
        "def helper(session: ISESession, now: float) -> None:\n"
        "    session._now = now\n"
    )
    assert lint_paths([target], select=["ISE016"]).ok


def test_ise016_catches_factory_bound_names(tmp_path: Path) -> None:
    target = tmp_path / "module.py"
    target.write_text(
        "from repro.online import ISESession\n"
        "\n"
        "def poke(tmp: str) -> None:\n"
        "    session = ISESession.open(tmp, 'demo')\n"
        "    object.__setattr__(session, '_fence', 0)\n"
    )
    report = lint_paths([target], select=["ISE016"])
    assert not report.ok
    assert all(d.code == "ISE016" for d in report.diagnostics)


def test_ise013_reraise_counts_as_recorded(tmp_path: Path) -> None:
    target = tmp_path / "module.py"
    target.write_text(
        "from concurrent.futures import BrokenExecutor\n"
        "\n"
        "def collect(future) -> object:\n"
        "    try:\n"
        "        return future.result()\n"
        "    except BrokenExecutor as exc:\n"
        "        raise RuntimeError('pool died') from exc\n"
    )
    assert lint_paths([target], select=["ISE013"]).ok


def test_ise014_catches_from_import_alias(tmp_path: Path) -> None:
    # `from time import sleep` must not dodge the rule: the import map
    # resolves the local name back to time.sleep.
    target = tmp_path / "module.py"
    target.write_text(
        "from time import sleep\n"
        "\n"
        "def backoff(seconds: float) -> None:\n"
        "    sleep(seconds)\n"
    )
    report = lint_paths([target], select=["ISE014"])
    assert not report.ok
    assert report.diagnostics[0].code == "ISE014"


def test_ise014_ignores_injected_sleeper_calls(tmp_path: Path) -> None:
    # Calling a *parameter* named sleep is the sanctioned pattern; only a
    # call that resolves to the time module's sleep is a violation.
    target = tmp_path / "module.py"
    target.write_text(
        "import time\n"
        "from typing import Callable\n"
        "\n"
        "class Retry:\n"
        "    sleep: Callable[[float], None] = time.sleep\n"
        "\n"
        "    def pause(self, seconds: float) -> None:\n"
        "        self.sleep(seconds)\n"
    )
    assert lint_paths([target], select=["ISE014"]).ok


def test_diagnostic_format_is_path_line_code(tmp_path: Path) -> None:
    case = CASES[0]
    report = _lint_snippet(tmp_path, case, case.hit)
    rendered = report.diagnostics[0].format()
    assert rendered.startswith(str(tmp_path / case.rel_path))
    assert f": {case.code} " in rendered
