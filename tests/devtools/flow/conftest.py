"""Shared fixtures: materialize tiny packages and analyze them.

The flow rules are whole-program, so unlike the per-file rule tests the
fixtures here are *package trees* — a dict of relative paths to sources —
written to a tmp dir and analyzed against a deliberately small layer DAG
(``core`` at the bottom, ``app`` above it, a sanctioned ``pkg.core.pool``
module, and budget machinery in ``pkg.core.budget``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import pytest

from repro.devtools.flow import FlowConfig, analyze_package
from repro.devtools.flow.config import LayerSpec
from repro.devtools.flow.runner import FlowResult

#: The miniature architecture every rule fixture is checked against.
MINI_CONFIG = FlowConfig(
    layers=(
        LayerSpec("core", ("pkg.core", "pkg.core.*"), ()),
        LayerSpec("app", ("pkg", "pkg.app", "pkg.app.*"), ("core",)),
    ),
    forbid=(("core", "app"),),
    entrypoints=("pkg.app.main:run",),
    concurrent_roots=("pkg.app.serve",),
    pool_sanctioned=("pkg.core.pool",),
    budget_class="pkg.core.budget.SolveBudget",
    budget_module="pkg.core.budget",
)

#: Budget machinery for the ISE104 fixtures, mirroring the real
#: ``repro.core.resilience`` surface the rule recognizes.
BUDGET_MODULE = '''\
"""Mini budget machinery."""


class SolveBudget:
    """Deadline holder."""

    def subbudget(self):
        return self

    def start(self):
        return self


def current_budget():
    return None


def check_budget():
    return None


def budget_scope(budget):
    return budget
'''


#: ``pyproject.toml`` mirroring :data:`MINI_CONFIG`, written next to every
#: fixture tree so the CLI's config discovery finds the mini DAG instead of
#: walking up to the repository's real one.
MINI_PYPROJECT = """\
[tool.repro-lint.layers]
core = { members = ["pkg.core", "pkg.core.*"], allow = [] }
app = { members = ["pkg", "pkg.app", "pkg.app.*"], allow = ["core"] }

[tool.repro-lint.flow]
forbid = [["core", "app"]]
entrypoints = ["pkg.app.main:run"]
concurrent_roots = ["pkg.app.serve"]
pool_sanctioned = ["pkg.core.pool"]
budget_class = "pkg.core.budget.SolveBudget"
budget_module = "pkg.core.budget"
"""


def write_tree(root: Path, files: Mapping[str, str]) -> Path:
    """Materialize ``files`` under ``root/pkg`` with package __init__ files."""
    pkg = root / "pkg"
    (root / "pyproject.toml").write_text(MINI_PYPROJECT, encoding="utf-8")
    for rel, source in files.items():
        target = pkg / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        current = target.parent
        while current != root:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text('"""Fixture package."""\n', encoding="utf-8")
            current = current.parent
    return pkg


@pytest.fixture()
def analyze(tmp_path: Path):
    """Analyze a fixture tree with the mini config; cache disabled."""

    def _run(files: Mapping[str, str], **kwargs) -> FlowResult:
        pkg = write_tree(tmp_path, files)
        kwargs.setdefault("config", MINI_CONFIG)
        kwargs.setdefault("use_cache", False)
        return analyze_package(pkg, **kwargs)

    return _run
