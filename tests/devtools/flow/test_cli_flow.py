"""CLI surface of the flow analyzer: --flow, --changed, baseline, SARIF."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.cli import main

from .conftest import write_tree

#: A tree with one cross-module ISE100 violation (core imports app).
VIOLATING = {
    "app/handlers.py": '"""H."""\n\n\ndef handle():\n    return 1\n',
    "core/util.py": (
        '"""U."""\n'
        "\n"
        "from ..app.handlers import handle\n"
        "\n"
        "\n"
        "def use():\n"
        "    return handle()\n"
    ),
}

CLEAN = {
    "core/util.py": '"""U."""\n\n\ndef helper():\n    return 1\n',
    "app/handlers.py": (
        '"""H."""\n'
        "\n"
        "from ..core.util import helper\n"
        "\n"
        "\n"
        "def handle():\n"
        "    return helper()\n"
    ),
}


@pytest.fixture()
def pkg(tmp_path: Path, monkeypatch) -> Path:
    """The violating tree, with cwd moved off the repo root so the repo's
    own baseline/cache defaults cannot leak into the run."""
    monkeypatch.chdir(tmp_path)
    return write_tree(tmp_path, VIOLATING)


def test_flow_flag_reports_cross_module_finding(capsys, pkg: Path) -> None:
    assert main(["--flow", "--no-cache", "--select", "ISE100", str(pkg)]) == 1
    out = capsys.readouterr().out
    assert "ISE100" in out
    assert "pkg.core.util -> pkg.app.handlers" in out


def test_flow_clean_tree_exits_zero(capsys, tmp_path: Path, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)
    pkg = write_tree(tmp_path, CLEAN)
    assert main(["--flow", "--no-cache", "--select", "ISE100", str(pkg)]) == 0


def test_list_rules_includes_flow_rules(capsys, monkeypatch, tmp_path: Path) -> None:
    monkeypatch.chdir(tmp_path)
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("ISE001", "ISE100", "ISE104", "ISE105"):
        assert code in out


def test_changed_mode_filters_to_given_files(capsys, pkg: Path) -> None:
    """--changed lints only the named file but still sees the whole graph."""
    offender = pkg / "core" / "util.py"
    innocent = pkg / "app" / "handlers.py"
    assert main(["--changed", "--select", "ISE100", str(innocent)]) == 0
    out = capsys.readouterr().out
    assert "ISE100" not in out
    assert main(["--changed", "--select", "ISE100", str(offender)]) == 1
    out = capsys.readouterr().out
    assert "ISE100" in out
    # the second run came from the cache written by the first
    assert Path(".repro-lint-cache").is_dir()


def test_show_suppressed_surfaces_silenced_findings(capsys, tmp_path, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)
    files = {
        key: value.replace(
            "from ..app.handlers import handle",
            "from ..app.handlers import handle  # repro-lint: disable=ISE100",
        )
        for key, value in VIOLATING.items()
    }
    pkg = write_tree(tmp_path, files)
    args = ["--flow", "--no-cache", "--select", "ISE100", str(pkg)]
    assert main(args) == 0
    assert "ISE100" not in capsys.readouterr().out
    assert main([*args, "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    assert "ISE100" in out and "[suppressed]" in out


def test_baseline_update_then_grandfather(capsys, pkg: Path) -> None:
    base = ["--flow", "--no-cache", "--select", "ISE100", str(pkg)]
    assert main([*base, "--update-baseline", "--baseline", "grandfather.json"]) == 0
    payload = json.loads(Path("grandfather.json").read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["findings"]) == 1
    # Baselined findings are reported separately and do not fail the run.
    assert main([*base, "--baseline", "grandfather.json"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # A fresh (non-baselined) finding still fails.
    offender = pkg / "app" / "handlers.py"
    offender.write_text(
        offender.read_text(encoding="utf-8").replace(
            '"""H."""', '"""H."""\n\nimport pkg.devtools_forbidden'
        ),
        encoding="utf-8",
    )
    assert main([*base, "--baseline", "grandfather.json"]) in (0, 1)


def test_sarif_output_is_valid(capsys, pkg: Path) -> None:
    assert main(
        ["--flow", "--no-cache", "--select", "ISE100", "--format", "sarif", str(pkg)]
    ) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    (result,) = run["results"]
    assert result["ruleId"] == "ISE100"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("core/util.py")
    assert location["region"]["startLine"] == 3


def test_select_flow_only_skips_per_file_rules(capsys, tmp_path, monkeypatch) -> None:
    """--select ISE104 must not run per-file rules on a per-file-dirty file."""
    monkeypatch.chdir(tmp_path)
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def is_unit(p: float) -> bool:\n    return p == 1.0\n", encoding="utf-8"
    )
    assert main(["--select", "ISE104", str(dirty)]) == 0
