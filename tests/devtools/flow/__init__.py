"""Tests for the whole-program flow analyzer (``repro-lint --flow``)."""
