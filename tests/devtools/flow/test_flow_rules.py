"""Fixture triples for every whole-program (ISE100+) rule.

Mirrors ``tests/devtools/test_rules.py``: each rule gets a package tree
that must trigger it, the same tree with a ``# repro-lint: disable=CODE``
comment on the *edge source line* (must be clean), and a compliant rewrite
(clean without suppressions).  A completeness check keeps the case table
in lockstep with the ``FLOW_RULES`` registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import pytest

from repro.devtools.flow import FLOW_RULES

from .conftest import BUDGET_MODULE

APP_HANDLERS = '"""Handlers."""\n\n\ndef handle():\n    return 1\n'


@dataclass(frozen=True)
class FlowCase:
    """One flow rule's (hit, suppressed, clean) fixture-tree triple."""

    code: str
    hit: Mapping[str, str]
    suppressed: Mapping[str, str]
    clean: Mapping[str, str]


CASES = [
    FlowCase(
        code="ISE100",
        hit={
            "app/handlers.py": APP_HANDLERS,
            "core/util.py": (
                '"""Util."""\n'
                "\n"
                "from ..app.handlers import handle\n"
                "\n"
                "\n"
                "def use():\n"
                "    return handle()\n"
            ),
        },
        suppressed={
            "app/handlers.py": APP_HANDLERS,
            "core/util.py": (
                '"""Util."""\n'
                "\n"
                "from ..app.handlers import handle  # repro-lint: disable=ISE100\n"
                "\n"
                "\n"
                "def use():\n"
                "    return handle()\n"
            ),
        },
        clean={
            "core/util.py": (
                '"""Util."""\n\n\ndef helper():\n    return 1\n'
            ),
            "app/handlers.py": (
                '"""Handlers."""\n'
                "\n"
                "from ..core.util import helper\n"
                "\n"
                "\n"
                "def handle():\n"
                "    return helper()\n"
            ),
        },
    ),
    FlowCase(
        code="ISE101",
        hit={
            "core/a.py": (
                '"""A."""\n'
                "\n"
                "from . import b\n"
                "\n"
                "\n"
                "def fa():\n"
                "    return b\n"
            ),
            "core/b.py": (
                '"""B."""\n'
                "\n"
                "from . import a\n"
                "\n"
                "\n"
                "def fb():\n"
                "    return a\n"
            ),
        },
        suppressed={
            "core/a.py": (
                '"""A."""\n'
                "\n"
                "from . import b  # repro-lint: disable=ISE101\n"
                "\n"
                "\n"
                "def fa():\n"
                "    return b\n"
            ),
            "core/b.py": (
                '"""B."""\n'
                "\n"
                "from . import a\n"
                "\n"
                "\n"
                "def fb():\n"
                "    return a\n"
            ),
        },
        clean={
            "core/a.py": (
                '"""A."""\n'
                "\n"
                "from . import b\n"
                "\n"
                "\n"
                "def fa():\n"
                "    return b\n"
            ),
            "core/b.py": (
                '"""B."""\n'
                "\n"
                "\n"
                "def fb():\n"
                "    from . import a\n"
                "    return a\n"
            ),
        },
    ),
    FlowCase(
        code="ISE102",
        hit={
            "app/serve.py": (
                '"""Serve."""\n'
                "\n"
                "COUNTER = 0\n"
                "\n"
                "\n"
                "def bump():\n"
                "    global COUNTER\n"
                "    COUNTER += 1\n"
            ),
        },
        suppressed={
            "app/serve.py": (
                '"""Serve."""\n'
                "\n"
                "COUNTER = 0\n"
                "\n"
                "\n"
                "def bump():\n"
                "    global COUNTER\n"
                "    COUNTER += 1  # repro-lint: disable=ISE102\n"
            ),
        },
        clean={
            "app/serve.py": (
                '"""Serve."""\n'
                "\n"
                "import threading\n"
                "\n"
                "COUNTER = 0\n"
                "_LOCK = threading.Lock()\n"
                "\n"
                "\n"
                "def bump():\n"
                "    global COUNTER\n"
                "    with _LOCK:\n"
                "        COUNTER += 1\n"
            ),
        },
    ),
    FlowCase(
        code="ISE103",
        hit={
            "app/work.py": (
                '"""Work."""\n'
                "\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "def fan_out(items):\n"
                "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
                "        return list(pool.map(str, items))\n"
            ),
        },
        suppressed={
            "app/work.py": (
                '"""Work."""\n'
                "\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "def fan_out(items):\n"
                "    with ProcessPoolExecutor(max_workers=2) as pool:  # repro-lint: disable=ISE103\n"
                "        return list(pool.map(str, items))\n"
            ),
        },
        clean={
            "core/pool.py": (
                '"""Sanctioned pool wrapper."""\n'
                "\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "\n"
                "\n"
                "def fan_out(items):\n"
                "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
                "        return list(pool.map(str, items))\n"
            ),
            "app/work.py": (
                '"""Work."""\n'
                "\n"
                "from ..core.pool import fan_out\n"
                "\n"
                "\n"
                "def run(items):\n"
                "    return fan_out(items)\n"
            ),
        },
    ),
    FlowCase(
        code="ISE104",
        hit={
            "core/budget.py": BUDGET_MODULE,
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "from .budget import check_budget\n"
                "\n"
                "\n"
                "def solve_loop(items):\n"
                "    for item in items:\n"
                "        check_budget()\n"
                "    return items\n"
            ),
            "app/main.py": (
                '"""Main."""\n'
                "\n"
                "from ..core.engine import solve_loop\n"
                "\n"
                "\n"
                "def run(items):\n"
                "    return solve_loop(items)\n"
            ),
        },
        suppressed={
            "core/budget.py": BUDGET_MODULE,
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "from .budget import check_budget\n"
                "\n"
                "\n"
                "def solve_loop(items):\n"
                "    for item in items:\n"
                "        check_budget()\n"
                "    return items\n"
            ),
            "app/main.py": (
                '"""Main."""\n'
                "\n"
                "from ..core.engine import solve_loop\n"
                "\n"
                "\n"
                "def run(items):\n"
                "    return solve_loop(items)  # repro-lint: disable=ISE104\n"
            ),
        },
        clean={
            "core/budget.py": BUDGET_MODULE,
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "from .budget import check_budget\n"
                "\n"
                "\n"
                "def solve_loop(items):\n"
                "    for item in items:\n"
                "        check_budget()\n"
                "    return items\n"
            ),
            "app/main.py": (
                '"""Main."""\n'
                "\n"
                "from ..core.budget import SolveBudget, budget_scope\n"
                "from ..core.engine import solve_loop\n"
                "\n"
                "\n"
                "def run(items):\n"
                "    with budget_scope(SolveBudget()):\n"
                "        return solve_loop(items)\n"
            ),
        },
    ),
    FlowCase(
        code="ISE105",
        hit={
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "\n"
                "def compute():\n"
                '    raise RuntimeError("boom")\n'
            ),
            "app/main.py": (
                '"""Main."""\n'
                "\n"
                "from ..core.engine import compute\n"
                "\n"
                "\n"
                "def run():\n"
                "    return compute()\n"
            ),
        },
        suppressed={
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "\n"
                "def compute():\n"
                '    raise RuntimeError("boom")  # repro-lint: disable=ISE105\n'
            ),
            "app/main.py": (
                '"""Main."""\n'
                "\n"
                "from ..core.engine import compute\n"
                "\n"
                "\n"
                "def run():\n"
                "    return compute()\n"
            ),
        },
        clean={
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "\n"
                "class CoreError(Exception):\n"
                '    """Typed core failure."""\n'
                "\n"
                "\n"
                "def compute():\n"
                '    raise CoreError("boom")\n'
            ),
            "app/main.py": (
                '"""Main."""\n'
                "\n"
                "from ..core.engine import compute\n"
                "\n"
                "\n"
                "def run():\n"
                "    return compute()\n"
            ),
        },
    ),
]

CASE_IDS = [case.code for case in CASES]


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_hit_fixture_triggers_rule(analyze, case: FlowCase) -> None:
    result = analyze(case.hit, select=(case.code,))
    codes = [diag.code for diag in result.diagnostics]
    assert codes == [case.code], (
        f"expected exactly one {case.code}, got {[d.format() for d in result.diagnostics]}"
    )


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_suppression_on_edge_source_line_silences(analyze, case: FlowCase) -> None:
    result = analyze(case.suppressed, select=(case.code,))
    assert not result.diagnostics, [d.format() for d in result.diagnostics]
    assert [diag.code for diag in result.suppressed] == [case.code]


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_clean_fixture_passes_without_suppressions(analyze, case: FlowCase) -> None:
    result = analyze(case.clean, select=(case.code,))
    assert not result.diagnostics, [d.format() for d in result.diagnostics]
    assert not result.suppressed


def test_every_flow_rule_has_a_fixture_triple() -> None:
    assert sorted(FLOW_RULES) == sorted(CASE_IDS)


def test_finding_messages_carry_the_offending_chain(analyze) -> None:
    """ISE100 findings name the full import chain, not just the edge."""
    case = CASES[0]
    result = analyze(case.hit, select=("ISE100",))
    (diag,) = result.diagnostics
    assert "pkg.core.util -> pkg.app.handlers" in diag.message
    assert "layer 'core'" in diag.message and "layer 'app'" in diag.message


def test_dropped_budget_call_site_is_flagged(analyze) -> None:
    """ISE104's dropped-budget sub-check: optional budget param not forwarded."""
    result = analyze(
        {
            "core/budget.py": BUDGET_MODULE,
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "\n"
                "def helper(budget=None):\n"
                "    return budget\n"
                "\n"
                "\n"
                "def outer(budget):\n"
                "    return helper()\n"
            ),
        },
        select=("ISE104",),
    )
    (diag,) = result.diagnostics
    assert "dropped budget" in diag.message
    assert diag.path.endswith("engine.py")


def test_recreated_budget_is_flagged(analyze) -> None:
    """ISE104's recreated-budget sub-check: fresh SolveBudget mid-path."""
    result = analyze(
        {
            "core/budget.py": BUDGET_MODULE,
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "from .budget import SolveBudget\n"
                "\n"
                "\n"
                "def refine(budget):\n"
                "    fresh = SolveBudget()\n"
                "    return fresh\n"
            ),
        },
        select=("ISE104",),
    )
    (diag,) = result.diagnostics
    assert "recreated budget" in diag.message


def test_forwarding_budget_keyword_is_clean(analyze) -> None:
    """Explicit budget= forwarding satisfies the dropped-budget check."""
    result = analyze(
        {
            "core/budget.py": BUDGET_MODULE,
            "core/engine.py": (
                '"""Engine."""\n'
                "\n"
                "\n"
                "def helper(budget=None):\n"
                "    return budget\n"
                "\n"
                "\n"
                "def outer(budget):\n"
                "    return helper(budget=budget.subbudget())\n"
            ),
        },
        select=("ISE104",),
    )
    assert not result.diagnostics
