"""The repository's own flow gate, plus regression injections.

Two guarantees from the issue's acceptance criteria:

* ``src/repro`` itself is flow-clean — every ISE100+ finding was either
  fixed or carries an in-source suppression, and nothing hides behind a
  baseline entry.
* The analyzer actually *catches* the regressions it exists to prevent.
  Each injection test plants one realistic defect in a scratch copy of
  ``src/repro`` (a serve<-core back-import, a process pool forked inside
  a pool worker, a dropped budget forward) and asserts exactly one
  finding of the expected code, carrying the offending chain.

The copy is shared module-wide and analyzed through one shared cache
directory, so after the first full parse each injection re-summarizes
only the single file it touched.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Iterator

import pytest

from repro.devtools.flow import FlowConfig, analyze_package
from repro.devtools.flow.runner import FlowResult

REPO_SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


@pytest.fixture(scope="module")
def scratch(tmp_path_factory) -> tuple[Path, Path]:
    """(copy of src/repro, shared cache dir) — copied once per module."""
    root = tmp_path_factory.mktemp("repo-gate")
    copy = root / "repro"
    shutil.copytree(
        REPO_SRC, copy, ignore=shutil.ignore_patterns("__pycache__")
    )
    return copy, root / "cache"


def _analyze(scratch: tuple[Path, Path], select: tuple[str, ...] = ()) -> FlowResult:
    copy, cache = scratch
    return analyze_package(
        copy, config=FlowConfig.default(), cache_dir=cache, select=select
    )


@pytest.fixture()
def inject(scratch: tuple[Path, Path]) -> Iterator:
    """Apply one text replacement to a file in the copy; undo afterwards.

    Each injection is analyzed with only the rule under test selected: a
    planted defect may legitimately trip sibling rules too (the back-import
    also creates a real load-time cycle, hence an ISE101), and the criterion
    here is "exactly one finding *of the expected code*, with its chain".
    """
    copy, _ = scratch
    restore: list[tuple[Path, str]] = []

    def _inject(rel: str, old: str, new: str, code: str) -> FlowResult:
        target = copy / rel
        original = target.read_text(encoding="utf-8")
        assert old in original, f"injection anchor vanished from {rel}"
        restore.append((target, original))
        target.write_text(original.replace(old, new, 1), encoding="utf-8")
        return _analyze(scratch, select=(code,))

    try:
        yield _inject
    finally:
        for target, original in restore:
            target.write_text(original, encoding="utf-8")


def test_src_repro_is_flow_clean(scratch: tuple[Path, Path]) -> None:
    """The committed tree has zero non-suppressed flow findings."""
    result = _analyze(scratch)
    assert result.diagnostics == []


def test_injected_back_import_is_caught(inject) -> None:
    """core -> serve violates the layer DAG and names the full chain."""
    result = inject(
        "core/tolerance.py",
        "from __future__ import annotations\n",
        "from __future__ import annotations\n\nfrom repro.serve.queue import SolveRequest\n",
        code="ISE100",
    )
    (finding,) = result.diagnostics
    assert finding.code == "ISE100"
    assert "repro.core.tolerance -> repro.serve.queue" in finding.message
    assert finding.path.endswith("core/tolerance.py")


def test_injected_nested_process_pool_is_caught(inject) -> None:
    """A pool forked inside a pool worker is flagged with its dispatch chain."""
    result = inject(
        "shortwindow/pipeline.py",
        "    tic = time.perf_counter()\n    report = ResilienceReport()\n",
        "    from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "    with ProcessPoolExecutor(max_workers=2) as inner:\n"
        "        inner.map(str, [])\n"
        "    tic = time.perf_counter()\n    report = ResilienceReport()\n",
        code="ISE103",
    )
    (finding,) = result.diagnostics
    assert finding.code == "ISE103"
    assert "repro.shortwindow.pipeline:_solve_bucket_mm" in finding.message
    assert "parallel_map" in finding.message


def test_injected_dropped_budget_is_caught(inject) -> None:
    """Omitting budget= on a budget-accepting callee is flagged at the call."""
    result = inject(
        "shortwindow/pipeline.py",
        "        retry=task.retry,\n        budget=budget,\n",
        "        retry=task.retry,\n",
        code="ISE104",
    )
    (finding,) = result.diagnostics
    assert finding.code == "ISE104"
    assert "run_with_fallbacks" in finding.message
    assert finding.path.endswith("shortwindow/pipeline.py")
