"""Graph construction mechanics: edges, resolution, workers, caching."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.flow import (
    GraphCache,
    build_graph,
    find_package_root,
    summarize_module,
)

from .conftest import write_tree

TREE = {
    "core/parallel.py": (
        '"""Mini parallel_map."""\n'
        "\n"
        "\n"
        'def parallel_map(fn, items, mode="auto"):\n'
        "    return [fn(item) for item in items]\n"
    ),
    "core/registry.py": (
        '"""Registry fan-out fixture."""\n'
        "\n"
        "\n"
        "class Exact:\n"
        '    """Backend."""\n'
        "\n"
        "    def solve(self):\n"
        "        return 1\n"
        "\n"
        "\n"
        "class Greedy:\n"
        '    """Backend."""\n'
        "\n"
        "    def solve(self):\n"
        "        return 2\n"
        "\n"
        "\n"
        'TABLE = {"exact": Exact(), "greedy": Greedy()}\n'
        "\n"
        "\n"
        "def get_algorithm(spec):\n"
        "    return TABLE[spec]\n"
    ),
    "app/jobs.py": (
        '"""Dispatch fixture."""\n'
        "\n"
        "from ..core.parallel import parallel_map\n"
        "from ..core.registry import get_algorithm\n"
        "\n"
        "COUNTER = 0\n"
        "\n"
        "\n"
        "def work(item):\n"
        "    global COUNTER\n"
        "    COUNTER += 1\n"
        "    return item\n"
        "\n"
        "\n"
        "def fan_out(items):\n"
        '    return parallel_map(work, items, mode="process")\n'
        "\n"
        "\n"
        "def fan_out_lambda(items):\n"
        "    return parallel_map(lambda item: item + 1, items)\n"
        "\n"
        "\n"
        "def dispatch(spec):\n"
        "    algo = get_algorithm(spec)\n"
        "    return algo.solve()\n"
    ),
}


def test_import_and_call_edges_resolve(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    graph = build_graph(pkg)
    import_pairs = {(e.src, e.dst) for e in graph.import_edges}
    assert ("pkg.app.jobs", "pkg.core.parallel") in import_pairs
    assert ("pkg.app.jobs", "pkg.core.registry") in import_pairs
    call_targets = {e.target for e in graph.out_edges("pkg.app.jobs:fan_out")}
    assert "pkg.core.parallel:parallel_map" in call_targets


def test_registry_lookup_fans_out_to_all_backends(tmp_path: Path) -> None:
    """``get_algorithm(spec).solve()`` must reach every registered class."""
    pkg = write_tree(tmp_path, TREE)
    graph = build_graph(pkg)
    targets = {e.target for e in graph.out_edges("pkg.app.jobs:dispatch")}
    assert "pkg.core.registry:Exact.solve" in targets
    assert "pkg.core.registry:Greedy.solve" in targets


def test_parallel_map_args_become_worker_entries(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    graph = build_graph(pkg)
    by_fqid = {entry.fqid: entry for entry in graph.worker_entries}
    assert "pkg.app.jobs:work" in by_fqid
    assert by_fqid["pkg.app.jobs:work"].kind == "process"
    lambdas = [fqid for fqid in by_fqid if "<lambda" in fqid]
    assert lambdas, "lambda task was not registered as a worker entry"


def test_reachability_chain_reconstruction(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    graph = build_graph(pkg)
    parents = graph.reachable(["pkg.app.jobs:fan_out"])
    assert "pkg.app.jobs:work" in parents
    chain = graph.chain(parents, "pkg.app.jobs:work")
    assert chain[0] == "pkg.app.jobs:fan_out"
    assert chain[-1] == "pkg.app.jobs:work"


def test_summary_round_trips_through_json(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    path = pkg / "app" / "jobs.py"
    summary = summarize_module("pkg.app.jobs", path)
    rebuilt = type(summary).from_dict(summary.to_dict())
    assert rebuilt == summary


def test_graph_cache_round_trip_and_corruption(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    graph = build_graph(pkg)
    cache = GraphCache(tmp_path / "cache", "pkg")
    cache.store(graph.summaries)
    loaded = cache.load()
    assert set(loaded) == set(graph.summaries)
    assert loaded["pkg.app.jobs"] == graph.summaries["pkg.app.jobs"]
    # A cached summary is reused (same sha) without reparsing drift.
    rebuilt = build_graph(pkg, cached=loaded)
    assert rebuilt.summaries["pkg.app.jobs"] == graph.summaries["pkg.app.jobs"]
    # Corruption degrades to an empty cache, never an exception.
    cache.path.write_bytes(b"{ not json")
    assert cache.load() == {}


def test_cache_invalidates_on_content_change(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    graph = build_graph(pkg)
    cache = GraphCache(tmp_path / "cache", "pkg")
    cache.store(graph.summaries)
    target = pkg / "app" / "jobs.py"
    target.write_text(
        target.read_text(encoding="utf-8") + "\n\ndef added():\n    return 3\n",
        encoding="utf-8",
    )
    rebuilt = build_graph(pkg, cached=cache.load())
    assert "pkg.app.jobs:added" in rebuilt.functions


def test_find_package_root_walks_up(tmp_path: Path) -> None:
    pkg = write_tree(tmp_path, TREE)
    assert find_package_root(pkg / "core" / "parallel.py") == pkg
    assert find_package_root(pkg / "core") == pkg
    outside = tmp_path / "loose.py"
    outside.write_text("x = 1\n", encoding="utf-8")
    assert find_package_root(outside) is None


def test_syntax_error_surfaces_as_parse_failure(tmp_path: Path) -> None:
    files = dict(TREE)
    files["app/broken.py"] = "def broken(:\n"
    pkg = write_tree(tmp_path, files)
    graph = build_graph(pkg)
    assert any("broken.py" in path for path, _, _ in graph.parse_failures)
    # the rest of the program is still analyzed
    assert "pkg.app.jobs:fan_out" in graph.functions
