"""Layer-DAG configuration: parsing, specificity, validation, discovery."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.flow import FlowConfig, FlowConfigError
from repro.devtools.flow.config import LayerSpec

REPO_ROOT = Path(__file__).resolve().parents[3]


def test_most_specific_member_pattern_wins() -> None:
    config = FlowConfig.default()
    assert config.layer_of("repro.core.tolerance") == "foundation"
    assert config.layer_of("repro.core.solver") == "solver"
    assert config.layer_of("repro.analysis.lower_bounds") == "bounds"
    assert config.layer_of("repro.analysis.sweep") == "toolkit"
    assert config.layer_of("not.in.any.layer") is None


def test_allow_closure_is_transitive() -> None:
    config = FlowConfig.default()
    serve_allowed = config.allowed_layers("serve")
    # serve -> solver -> algorithms -> mm -> lp, transitively
    for layer in ("serve", "solver", "algorithms", "mm", "lp", "foundation"):
        assert layer in serve_allowed
    assert "devtools" not in serve_allowed


def test_unknown_allow_reference_rejected() -> None:
    config = FlowConfig(
        layers=(LayerSpec("a", ("pkg.a",), ("ghost",)),),
    )
    with pytest.raises(FlowConfigError, match="unknown layer"):
        config.validate()


def test_allow_cycle_rejected() -> None:
    config = FlowConfig(
        layers=(
            LayerSpec("a", ("pkg.a",), ("b",)),
            LayerSpec("b", ("pkg.b",), ("a",)),
        ),
    )
    with pytest.raises(FlowConfigError, match="cycle"):
        config.validate()


def test_from_mapping_requires_layers() -> None:
    with pytest.raises(FlowConfigError, match="layers"):
        FlowConfig.from_mapping({"flow": {}})


def test_from_mapping_rejects_malformed_forbid() -> None:
    with pytest.raises(FlowConfigError, match="forbid"):
        FlowConfig.from_mapping(
            {
                "layers": {"a": {"members": ["pkg.a"]}},
                "flow": {"forbid": [["only-one"]]},
            }
        )


def test_repo_pyproject_matches_default_fallback() -> None:
    """The committed TOML and the 3.10 fallback must never drift apart."""
    config = FlowConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    assert config == FlowConfig.default()


def test_discover_falls_back_to_default(tmp_path: Path) -> None:
    assert FlowConfig.discover(tmp_path) == FlowConfig.default()


def test_discover_finds_configured_pyproject(tmp_path: Path) -> None:
    project = tmp_path / "proj"
    nested = project / "src" / "pkg"
    nested.mkdir(parents=True)
    (project / "pyproject.toml").write_text(
        "[tool.repro-lint.layers]\n"
        'only = { members = ["pkg", "pkg.*"], allow = [] }\n',
        encoding="utf-8",
    )
    config = FlowConfig.discover(nested)
    assert [layer.name for layer in config.layers] == ["only"]
