"""Suppression-comment mechanics: line scope, file scope, malformed markers."""

from __future__ import annotations

from pathlib import Path

from repro.devtools import SourceFile, Suppressions, lint_paths
from repro.devtools.runner import META_CODE

VIOLATION = (
    "def is_unit(p: float) -> bool:\n"
    "    return p == 1.0\n"
)


def _lint(tmp_path: Path, text: str, name: str = "module.py"):
    target = tmp_path / name
    target.write_text(text)
    return lint_paths([target], select=["ISE001"])


def test_line_suppression_only_covers_its_line(tmp_path: Path) -> None:
    text = (
        "def f(p: float, q: float) -> bool:\n"
        "    a = p == 1.0  # repro-lint: disable=ISE001\n"
        "    b = q == 2.0\n"
        "    return a and b\n"
    )
    report = _lint(tmp_path, text)
    assert len(report.diagnostics) == 1
    assert report.diagnostics[0].line == 3


def test_multiple_codes_in_one_marker(tmp_path: Path) -> None:
    text = (
        "def f(p: float) -> bool:\n"
        "    return p == 1e-9  # repro-lint: disable=ISE001,ISE002\n"
    )
    target = tmp_path / "module.py"
    target.write_text(text)
    report = lint_paths([target], select=["ISE001", "ISE002"])
    assert report.ok, report.to_text()


def test_file_wide_suppression_covers_every_line(tmp_path: Path) -> None:
    text = (
        "# repro-lint: disable-file=ISE001\n"
        "def f(p: float, q: float) -> bool:\n"
        "    return p == 1.0 and q == 2.0\n"
    )
    report = _lint(tmp_path, text)
    assert report.ok, report.to_text()


def test_malformed_marker_is_reported_as_meta_code(tmp_path: Path) -> None:
    text = "X = 1  # repro-lint: disable=BOGUS\n"
    report = _lint(tmp_path, text)
    assert [d.code for d in report.diagnostics] == [META_CODE]


def test_meta_code_is_not_suppressible(tmp_path: Path) -> None:
    text = "X = 1  # repro-lint: disable=BOGUS,ISE000\n"
    report = _lint(tmp_path, text)
    assert any(d.code == META_CODE for d in report.diagnostics)


def test_suppression_syntax_in_docstring_is_ignored(tmp_path: Path) -> None:
    text = (
        '"""Docs may quote `# repro-lint: disable=ISE001` freely."""\n'
        "\n"
        "def f(p: float) -> bool:\n"
        "    return p == 1.0\n"
    )
    report = _lint(tmp_path, text)
    assert [d.code for d in report.diagnostics] == ["ISE001"]
    assert report.diagnostics[0].line == 4


def test_syntax_error_surfaces_as_meta_code(tmp_path: Path) -> None:
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    report = lint_paths([target])
    assert [d.code for d in report.diagnostics] == [META_CODE]
    assert "could not parse" in report.diagnostics[0].message


def test_suppressions_scan_roundtrip() -> None:
    text = (
        "# repro-lint: disable-file=ISE003\n"
        "x = 1  # repro-lint: disable=ISE001\n"
    )
    sup = Suppressions.scan(text)
    assert sup.is_suppressed("ISE003", 99)
    assert sup.is_suppressed("ISE001", 2)
    assert not sup.is_suppressed("ISE001", 1)
    assert not sup.malformed


def test_source_file_parse_links_parents(tmp_path: Path) -> None:
    target = tmp_path / "module.py"
    target.write_text("def f() -> None:\n    x = 1\n")
    source = SourceFile.parse(target)
    import ast

    assigns = [n for n in ast.walk(source.tree) if isinstance(n, ast.Assign)]
    assert assigns and isinstance(assigns[0].parent, ast.FunctionDef)
