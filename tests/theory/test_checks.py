"""Tests for the executable theorem checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import solve_ise
from repro.instances import (
    long_window_instance,
    mixed_instance,
    short_window_instance,
)
from repro.longwindow import LongWindowSolver
from repro.shortwindow import ShortWindowSolver
from repro.theory import (
    BoundCheck,
    check_theorem1,
    check_theorem12,
    check_theorem14,
    check_theorem20,
)


class TestBoundCheck:
    def test_holds_and_slack(self):
        ok = BoundCheck("x", 3.0, 5.0)
        assert ok.holds and ok.slack == pytest.approx(2.0)
        bad = BoundCheck("y", 5.0, 3.0)
        assert not bad.holds and bad.slack == pytest.approx(-2.0)

    def test_tolerance_at_equality(self):
        assert BoundCheck("z", 5.0, 5.0).holds
        assert BoundCheck("z", 5.0 + 1e-9, 5.0).holds


class TestTheorem12Check:
    @pytest.mark.parametrize("seed", range(4))
    def test_holds_on_pipeline_output(self, seed):
        gen = long_window_instance(12, 2, 10.0, seed)
        result = LongWindowSolver().solve(gen.instance)
        check = check_theorem12(gen.instance, result)
        assert check.holds, check.summary()
        assert "Theorem 12" in check.summary()

    def test_detects_violation(self):
        """A falsified result (machines over budget) must fail."""
        gen = long_window_instance(8, 1, 10.0, 0)
        result = LongWindowSolver().solve(gen.instance)
        import dataclasses

        fake = dataclasses.replace(result, machines_used=1000)
        check = check_theorem12(gen.instance, fake)
        assert not check.holds
        assert "VIOLATED" in check.summary()


class TestTheorem14Check:
    @pytest.mark.parametrize("seed", range(3))
    def test_holds(self, seed):
        gen = long_window_instance(10, 2, 10.0, seed)
        base, traded = LongWindowSolver().solve_with_speed(gen.instance)
        check = check_theorem14(gen.instance, base, traded)
        assert check.holds, check.summary()


class TestTheorem20Check:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("mm", ["best_greedy", "backtrack"])
    def test_holds(self, seed, mm):
        from repro.shortwindow import ShortWindowConfig

        gen = short_window_instance(16, 2, 10.0, seed)
        result = ShortWindowSolver(ShortWindowConfig(mm_algorithm=mm)).solve(
            gen.instance
        )
        check = check_theorem20(gen.instance, result)
        assert check.holds, check.summary()


@given(seed=st.integers(0, 5000), n=st.integers(4, 14))
@settings(max_examples=12, deadline=None)
def test_theorem1_check_property(seed, n):
    gen = mixed_instance(n, 2, 10.0, seed)
    result = solve_ise(gen.instance)
    check = check_theorem1(gen.instance, result)
    assert check.holds, check.summary()


class TestOverlappingVariantCheck:
    def test_theorem1_with_variant_flag(self):
        from repro import ISEConfig
        from repro.instances import short_window_instance

        gen = short_window_instance(16, 2, 10.0, 4, max_processing_frac=0.9)
        result = solve_ise(
            gen.instance, ISEConfig(overlapping_calibrations=True)
        )
        relaxed = check_theorem1(
            gen.instance, result, allow_overlapping_calibrations=True
        )
        assert relaxed.holds, relaxed.summary()
